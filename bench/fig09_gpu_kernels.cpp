// Figure 9: throughput of matrix clustering (Algorithm 4/5) and wrapping
// (Algorithm 6/7) on the simulated GPU, including transfer time, vs matrix
// size — against the device's own DGEMM rate and the host DGEMM rate.
//
// The bench goes through GpuSimBackend + BackendBChain — the exact code
// path the engine uses with --backend=gpusim — so the measured rates match
// what a simulation run is billed.
//
// SUBSTITUTION NOTE: rates are measured on the simulated device's virtual
// clock (Tesla C2050 cost model, see gpusim/device_spec.h); results are
// computed on the host with identical arithmetic. The figure's content —
// clustering approaches device-DGEMM speed because one transfer is
// amortized over k GEMMs, wrapping stays well below it but above host
// DGEMM — is reproduced by the model.
#include <vector>

#include "backend/bchain.h"
#include "backend/gpusim_backend.h"
#include "bench_util.h"
#include "linalg/blas3.h"
#include "linalg/util.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  using linalg::Matrix;
  banner("Fig. 9", "simulated-GPU clustering and wrapping GFlop/s "
                   "(virtual clock, incl. transfers)");

  const idx k = 10;
  std::vector<idx> sizes = {128, 256, 384, 512, 768, 1024};

  obs::Json rows = obs::Json::array();
  cli::Table table({"n", "cluster GF/s", "wrap GF/s", "wrap rowwise GF/s",
                    "device gemm GF/s", "host gemm GF/s"});
  for (idx n : sizes) {
    linalg::MatrixRng rng(static_cast<std::uint64_t>(n));
    // Any well-scaled B works for rate measurements; use a random
    // orthogonal-ish matrix to keep products bounded.
    Matrix b = rng.orthogonal_matrix(n);
    Matrix binv = linalg::transpose(b);

    backend::GpuSimBackend gpusim;
    backend::BackendBChain chain(gpusim, b, binv);

    std::vector<linalg::Vector> vs;
    for (idx j = 0; j < k; ++j) {
      linalg::Vector v(n);
      for (idx i = 0; i < n; ++i) v[i] = rng.uniform(0.7, 1.4);
      vs.push_back(std::move(v));
    }

    gpusim.reset_stats();
    (void)chain.cluster_product(vs, /*fused_kernel=*/true);
    gpusim.synchronize();
    const double t_cluster = gpusim.stats().total_seconds();
    const double gf_cluster =
        backend::cluster_product_flops(n, k) / t_cluster / 1e9;

    Matrix g = rng.uniform_matrix(n, n);
    gpusim.reset_stats();
    chain.wrap(g, vs[0], /*fused_kernel=*/true);
    gpusim.synchronize();
    const double gf_wrap =
        backend::wrap_flops(n) / gpusim.stats().total_seconds() / 1e9;

    gpusim.reset_stats();
    chain.wrap(g, vs[0], /*fused_kernel=*/false);
    gpusim.synchronize();
    const double gf_wrap_rowwise =
        backend::wrap_flops(n) / gpusim.stats().total_seconds() / 1e9;

    const double gf_dev_gemm =
        gemm_flops(n) / gpusim.device().spec().gemm_seconds(n, n, n) / 1e9;

    // Host DGEMM (real wall clock).
    Matrix c = Matrix::zero(n, n);
    Stopwatch watch;
    int reps = 0;
    do {
      linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, b, g, 0.0, c);
      ++reps;
    } while (watch.seconds() < 0.2);
    const double gf_host = gemm_flops(n) * reps / watch.seconds() / 1e9;

    rows.push_back(obs::Json::object()
                       .set("n", n)
                       .set("cluster_gflops", gf_cluster)
                       .set("wrap_gflops", gf_wrap)
                       .set("wrap_rowwise_gflops", gf_wrap_rowwise)
                       .set("device_gemm_gflops", gf_dev_gemm)
                       .set("host_gemm_gflops", gf_host));
    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(gf_cluster, 1), cli::Table::num(gf_wrap, 1),
                   cli::Table::num(gf_wrap_rowwise, 1),
                   cli::Table::num(gf_dev_gemm, 1),
                   cli::Table::num(gf_host, 1)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 9): cluster ~= device gemm >> "
              "wrap > host gemm; the row-by-row dscal wrap (Alg. 6) trails "
              "the fused kernel (Alg. 7).\n\n");
  maybe_write_bench_manifest("fig09_gpu_kernels", rows);
  return 0;
}
