// Ablation: checkerboard (sparse split-bond) application of B vs the dense
// GEMM — QUEST's large-lattice option. Reports the time to form B * X for
// an N x N matrix X both ways, plus the splitting accuracy.
#include "bench_util.h"
#include "hubbard/checkerboard.h"
#include "hubbard/kinetic.h"
#include "linalg/blas3.h"
#include "linalg/norms.h"
#include "linalg/util.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  using linalg::Matrix;
  banner("Ablation (checkerboard)",
         "sparse split-bond B application vs dense GEMM");

  cli::Table table({"N", "dense ms", "checkerboard ms", "speedup",
                    "split rel. err"});
  std::vector<idx> ls = {8, 12, 16, 24};
  if (full_scale()) ls.push_back(32);
  for (idx l : ls) {
    hubbard::Lattice lat(l, l);
    hubbard::ModelParams p;
    p.beta = 4.0;
    p.slices = 40;  // dtau = 0.1
    const idx n = lat.num_sites();

    hubbard::KineticExponentials ke = hubbard::kinetic_exponentials(lat, p);
    hubbard::CheckerboardB cb(lat, p);
    linalg::MatrixRng rng(static_cast<std::uint64_t>(n));
    Matrix x = rng.uniform_matrix(n, n);
    Matrix y = Matrix::zero(n, n);

    Stopwatch wd;
    int reps = 0;
    do {
      linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, ke.b, x, 0.0, y);
      ++reps;
    } while (wd.seconds() < 0.2);
    const double dense_ms = wd.seconds() / reps * 1e3;

    Stopwatch wc;
    reps = 0;
    Matrix xc = x;
    do {
      cb.apply_left(xc);
      ++reps;
    } while (wc.seconds() < 0.2);
    const double cb_ms = wc.seconds() / reps * 1e3;

    const double err = linalg::relative_difference(cb.dense(), ke.b);
    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(dense_ms, 3), cli::Table::num(cb_ms, 3),
                   cli::Table::num(dense_ms / cb_ms, 1),
                   cli::Table::sci(err)});
  }
  table.print();
  std::printf("\nexpected: the O(N^2)-work checkerboard pulls ahead of the\n"
              "O(N^3) GEMM as N grows, at an O(dtau^2) accuracy cost (~1e-2\n"
              "at dtau = 0.1) of the same order as the Trotter error the\n"
              "simulation already accepts.\n\n");

  // Part 2: the same comparison through the backend hot path on the gpusim
  // virtual clock — a wrap-dominated chain segment with a dense vs a
  // structured BackendBChain. These rows are deterministic (the cost model
  // bills from shapes alone) and form the BENCH_checkerboard.json baseline
  // the bench_regress gate replays.
  std::printf("device model (gpusim virtual clock): 8 wraps + k=10 cluster\n\n");
  const obs::Json rows = checkerboard_device_rows(/*quick=*/false);
  cli::Table dev({"N", "bonds", "groups", "dense device s", "cb device s",
                  "speedup"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& r = rows[i];
    dev.add_row({cli::Table::integer(static_cast<long>(r.at("n").number())),
                 cli::Table::integer(static_cast<long>(r.at("bonds").number())),
                 cli::Table::integer(
                     static_cast<long>(r.at("groups").number())),
                 cli::Table::num(r.at("dense_device_seconds").number(), 6),
                 cli::Table::num(r.at("cb_device_seconds").number(), 6),
                 cli::Table::num(r.at("speedup").number(), 2)});
  }
  dev.print();
  std::printf("\nexpected: the O(bonds x cols) bond-table replay beats the\n"
              "dense GEMM wrap at every modeled size, and the gap widens\n"
              "with N as the GEMM's O(N^3) flops outgrow the per-group\n"
              "launch overhead that bounds the checkerboard bill.\n\n");
  maybe_write_bench_manifest("ablation_checkerboard", rows);
  return 0;
}
