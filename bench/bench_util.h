// Shared helpers for the per-figure bench binaries.
//
// Every bench scales its workload down from the paper's 36-hour production
// runs so the whole harness finishes in minutes on one core, while keeping
// the *shape* of each figure. Set DQMC_FULL=1 to run paper-scale parameters
// (documented per bench); EXPERIMENTS.md records both.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/stopwatch.h"
#include "cli/table.h"
#include "dqmc/simulation.h"
#include "linalg/matrix.h"
#include "obs/json.h"

namespace dqmc::bench {

using linalg::idx;

/// True when the harness should run paper-scale parameters.
inline bool full_scale() { return env_flag("DQMC_FULL", false); }

/// Standard banner so the tee'd bench_output.txt is self-describing.
inline void banner(const char* fig, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("mode: %s (set DQMC_FULL=1 for paper-scale parameters)\n",
              full_scale() ? "FULL (paper scale)" : "scaled-down");
  std::printf("==============================================================\n");
}

/// Nominal flop counts used for GFlop/s reporting (matching LAPACK's
/// conventions so rates are comparable with the paper's figures).
inline double gemm_flops(idx n) {
  return 2.0 * static_cast<double>(n) * n * n;
}
inline double qr_flops(idx n) {  // dgeqrf on square n
  return 4.0 / 3.0 * static_cast<double>(n) * n * n;
}
inline double form_q_flops(idx n) {  // dorgqr, full square Q
  return 4.0 / 3.0 * static_cast<double>(n) * n * n;
}

/// Nominal flops of one stratified Green's evaluation over `m` factors of
/// size n: per step one GEMM (chain * Q), column scaling, QR, explicit Q,
/// and the T update (triangular multiply ~ n^3), plus the closing solves.
inline double greens_eval_flops(idx n, idx m) {
  const double n3 = static_cast<double>(n) * n * n;
  const double per_step = 2.0 * n3          // C = B * Q
                          + 4.0 / 3.0 * n3  // QR
                          + 4.0 / 3.0 * n3  // form Q
                          + 1.0 * n3;       // T update (triangular)
  const double close = 2.0 / 3.0 * n3 * 2   // two LU factorizations
                       + 2.0 * n3 * 2;      // two triangular solve pairs
  return static_cast<double>(m) * per_step + close;
}

/// Five-number summary for the Fig. 2 box-and-whisker rows.
struct FiveNumber {
  double min, q1, median, q3, max;
};
FiveNumber five_number_summary(std::vector<double> samples);

/// When DQMC_MANIFEST_JSON is set, write the run manifest of `results`
/// there (see dqmc/run_manifest.h) so bench runs leave a machine-readable
/// record next to the tee'd text output. No-op when the variable is unset.
void maybe_write_manifest(const core::SimulationResults& results);

/// Manifest variant for kernel benches that have no SimulationResults:
/// writes {"manifest": ..., "results": ..., "runtime": ..., "metrics": ...}
/// to DQMC_MANIFEST_JSON (e.g. the BENCH_greens.json perf-trajectory record
/// from fig04_greens_gflops). No-op when the variable is unset.
void maybe_write_bench_manifest(const std::string& bench,
                                const obs::Json& results);

/// Shared checkerboard-vs-dense device workload for ablation_checkerboard
/// and the bench_regress gate: per lattice size, the gpusim virtual-clock
/// seconds of a wrap-dominated chain segment (8 wraps + one k=10 cluster
/// product) with a dense BackendBChain vs a structured (checkerboard) one,
/// each on a fresh backend. The cost model bills from shapes alone, so the
/// rows are deterministic: any drift against BENCH_checkerboard.json means
/// the execution model changed, not the machine. `quick` restricts to the
/// 8x8 lattice for the ctest-sized gate; full mode runs L in {8,12,16,24}.
/// Row fields: l, n, bonds, groups, dense_device_seconds,
/// cb_device_seconds, speedup.
obs::Json checkerboard_device_rows(bool quick);

/// Shared stabilizer/precision workload for stability_policies and the
/// bench_regress stability suite: per (beta, stabilizer) pair, one short
/// gpusim simulation under each precision policy. The virtual clock bills
/// fp32 buffers at half the bytes and twice the FLOP rate, so the modeled
/// fp64/fp32 ratio is the policy's device speedup; health monitoring runs
/// throughout so each row also carries the observed max wrap drift. Every
/// graded row additionally reports the pinned large-beta (beta = 40, U = 0)
/// log-scale spectrum drift against the analytic singular values
/// e^{-beta lambda} — the quantity that separates graded QR (drifts) from
/// the SVD stack (singular-value-exact); see docs/STABILITY.md. `quick`
/// restricts to the smallest beta for the ctest-sized gate. Row fields:
/// beta, slices, stabilizer, fp64_device_seconds, fp32_device_seconds,
/// fp32_speedup, fp64_wrap_drift_max, fp32_wrap_drift_max, log_scale_drift.
obs::Json stability_policy_rows(bool quick);

/// Shared direct-vs-FFT measurement workload for fig05/fig07, the
/// fft_measurements bench and the bench_regress fft suite: per lattice
/// size, both measurement paths run over the SAME synthetic Green's
/// functions (seeded Rng fill, so the parity columns are deterministic) —
/// equal-time and dynamic, timed over enough repetitions to resolve the
/// wall clock. The parity columns (max absolute deviation over every
/// observable the sample carries) are exact replay invariants; the
/// seconds/speedup columns are wall-clock and therefore only sanity-gated
/// (the fft gate trips on parity drift or a lost crossover, not timing
/// noise). `quick` restricts to the 16x16 lattice for the ctest-sized
/// gate; full mode runs L in {8, 12, 16, 20, 24}. Row fields: l, n,
/// et_direct_seconds, et_fft_seconds, et_speedup, et_max_dev,
/// dyn_direct_seconds, dyn_fft_seconds, dyn_speedup, dyn_max_dev.
obs::Json fft_measurement_rows(bool quick);

}  // namespace dqmc::bench
