// Overhead of the observability layer (obs::Tracer / obs::MetricsRegistry /
// obs::HealthMonitor) on the DQMC hot paths.
//
// The contract is "zero overhead when disabled": every instrumented call
// site pays exactly one relaxed atomic load while tracing/metrics are off.
// The BM_Sweep pair measures the end-to-end sweep loop both ways — with
// everything disabled it must sit within noise of the pre-instrumentation
// baseline; with everything enabled the cost stays a few percent.
// The fail-point registry (src/fault) carries the same contract: a
// DQMC_FAILPOINT site costs one relaxed atomic load while nothing is armed
// — BM_FailpointDisarmed measures the hot-path probe, and
// BM_FailpointArmedOtherSite shows the armed-registry cost when some OTHER
// site is armed (the probed site still must not slow down beyond the
// registry lookup). Compile-out (-DDQMC_NO_FAILPOINTS) is proven by
// tests/fault/test_failpoint_compileout.
// The flight recorder (src/obs/flight_recorder.h) extends the contract: a
// DQMC_FLIGHT_EVENT site costs one relaxed atomic load while the recorder is
// disarmed (BM_FlightDisarmed; budget < 1% of a sweep — the CTest guard is
// tests/obs/test_flight_overhead), and armed recording stays a bounded
// lock-free ring write (BM_FlightArmed). Compile-out
// (-DDQMC_NO_FLIGHT_RECORDER) is proven by tests/obs/test_flight_compileout.
#include <benchmark/benchmark.h>

#include "common/profiler.h"
#include "dqmc/simulation.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace dqmc;

void set_all_obs(bool enabled) {
  obs::Tracer::global().set_enabled(enabled);
  obs::metrics().set_enabled(enabled);
  obs::health().set_enabled(enabled);
}

void BM_ScopedPhase(benchmark::State& state) {
  set_all_obs(false);
  Profiler prof;
  for (auto _ : state) {
    ScopedPhase phase(&prof, Phase::kOther);
    benchmark::DoNotOptimize(&prof);
  }
  set_all_obs(false);
}
BENCHMARK(BM_ScopedPhase);

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  tracer.set_enabled(false);
  tracer.reset();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_CounterDisabled(benchmark::State& state) {
  obs::metrics().set_enabled(false);
  for (auto _ : state) {
    obs::metrics().count("bench.counter");
  }
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::metrics().set_enabled(true);
  for (auto _ : state) {
    obs::metrics().count("bench.counter");
  }
  obs::metrics().set_enabled(false);
  obs::metrics().reset();
}
BENCHMARK(BM_CounterEnabled);

void BM_FlightDisarmed(benchmark::State& state) {
  obs::flight_recorder().set_enabled(false);
  for (auto _ : state) {
    DQMC_FLIGHT_EVENT(obs::FlightEventKind::kNote, "bench.flight");
  }
}
BENCHMARK(BM_FlightDisarmed);

void BM_FlightArmed(benchmark::State& state) {
  obs::FlightRecorder& fr = obs::flight_recorder();
  fr.set_enabled(true);
  for (auto _ : state) {
    DQMC_FLIGHT_EVENT(obs::FlightEventKind::kNote, "bench.flight", "armed",
                      1.0, 2.0);
  }
  fr.set_enabled(false);
  fr.reset();
}
BENCHMARK(BM_FlightArmed);

void BM_FailpointDisarmed(benchmark::State& state) {
  fault::failpoints().disarm_all();
  for (auto _ : state) {
    DQMC_FAILPOINT("bench.site");
  }
}
BENCHMARK(BM_FailpointDisarmed);

void BM_FailpointArmedOtherSite(benchmark::State& state) {
  // Arm a DIFFERENT site persistently from hit 1; the probed site now pays
  // the registry lookup on every hit but never fires.
  fault::failpoints().disarm_all();
  fault::failpoints().arm("bench.other", 1,
                          fault::FailPointRegistry::kPersistent);
  for (auto _ : state) {
    DQMC_FAILPOINT("bench.site");
  }
  fault::failpoints().disarm_all();
}
BENCHMARK(BM_FailpointArmedOtherSite);

// End-to-end: one full 4x4 sweep with the observability layer off vs on.
// The two medians must agree within noise when obs is off (satellite check;
// the CTest variant of this guard lives in tests/common/test_trace.cpp).
void BM_Sweep(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  set_all_obs(obs_on);

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = 4;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 20;
  const hubbard::Lattice lattice = cfg.make_lattice();
  core::DqmcEngine engine(lattice, cfg.model, cfg.engine, /*seed=*/7);
  engine.initialize();

  for (auto _ : state) {
    core::SweepStats stats = engine.sweep();
    benchmark::DoNotOptimize(stats.accepted);
    // Keep the trace ring from wrapping (and its memory bounded) so the
    // enabled variant measures steady-state emission, not reallocation.
    if (obs_on && obs::Tracer::global().recorded() > (1u << 14)) {
      obs::Tracer::global().reset();
    }
  }

  set_all_obs(false);
  obs::Tracer::global().reset();
  obs::metrics().reset();
  obs::health().reset();
}
BENCHMARK(BM_Sweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
