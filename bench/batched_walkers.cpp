// Walker-crowd throughput: W lockstep walkers with batched backend launches
// versus W sequential single-walker chains, at equal thread budget, on the
// gpusim virtual clock (the cost-model seconds a real accelerator would
// bill). Small lattices are launch-fee dominated, which is exactly where
// cuBLAS-batched execution pays — the paper's motivation for folding the
// walker axis into the batch dimension.
//
//   DQMC_MANIFEST_JSON=bench/BENCH_batched.json ./batched_walkers
//
// regenerates the committed baseline (see docs/PERFORMANCE.md, "Walker
// batching"). Throughput = walker-sweeps per modeled device second; the
// trajectories of both columns are bitwise identical per walker, so the
// comparison is pure execution-model, not physics.
#include "bench_util.h"

#include "backend/backend.h"

namespace {

using namespace dqmc;
using bench::full_scale;
using linalg::idx;

struct Shape {
  idx lx, ly;
};

core::SimulationConfig base_config(const Shape& s) {
  core::SimulationConfig cfg;
  cfg.lx = s.lx;
  cfg.ly = s.ly;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 16;
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  cfg.warmup_sweeps = 1;
  cfg.measurement_sweeps = full_scale() ? 8 : 2;
  cfg.bins = 2;
  cfg.seed = 17;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("batched_walkers",
                "lockstep walker crowds vs sequential chains (gpusim "
                "modeled time)");

  const std::vector<Shape> shapes = {{8, 8}, {16, 8}, {16, 16}};
  const std::vector<idx> crowd_sizes = {1, 4, 8, 16};

  cli::Table table({"N", "W", "seq walker-sweeps/s", "batched walker-sweeps/s",
                    "speedup", "launches seq", "launches batched"});
  obs::Json rows = obs::Json::array();

  for (const Shape& shape : shapes) {
    for (const idx w : crowd_sizes) {
      core::SimulationConfig cfg = base_config(shape);
      const idx n = cfg.lx * cfg.ly;
      const double walker_sweeps = static_cast<double>(w) *
                                   static_cast<double>(cfg.warmup_sweeps +
                                                       cfg.measurement_sweeps);

      // W independent chains, each on its own backend; the merge sums the
      // per-chain modeled seconds — the serial device bill.
      cfg.walker_batch = 0;
      const core::SimulationResults seq =
          core::run_parallel_simulation(cfg, w);
      const double seq_seconds = seq.backend_stats.total_seconds();

      // The same W chains as ONE lockstep crowd on one shared backend.
      cfg.walker_batch = w;
      const core::SimulationResults crowd =
          core::run_parallel_simulation(cfg, w);
      const double batched_seconds = crowd.backend_stats.total_seconds();

      if (seq.trajectory_hash != crowd.trajectory_hash) {
        std::printf("TRAJECTORY MISMATCH at N=%lld W=%lld — batched path "
                    "diverged!\n",
                    static_cast<long long>(n), static_cast<long long>(w));
        return 1;
      }

      const double seq_rate = walker_sweeps / seq_seconds;
      const double batched_rate = walker_sweeps / batched_seconds;
      rows.push_back(
          obs::Json::object()
              .set("n", n)
              .set("walkers", w)
              .set("seq_device_seconds", seq_seconds)
              .set("batched_device_seconds", batched_seconds)
              .set("seq_walker_sweeps_per_second", seq_rate)
              .set("batched_walker_sweeps_per_second", batched_rate)
              .set("speedup", batched_rate / seq_rate)
              .set("seq_kernel_launches", seq.backend_stats.kernel_launches)
              .set("batched_kernel_launches",
                   crowd.backend_stats.kernel_launches));
      table.add_row({cli::Table::integer(static_cast<long>(n)),
                     cli::Table::integer(static_cast<long>(w)),
                     cli::Table::num(seq_rate, 1),
                     cli::Table::num(batched_rate, 1),
                     cli::Table::num(batched_rate / seq_rate, 2),
                     cli::Table::integer(static_cast<long>(
                         seq.backend_stats.kernel_launches)),
                     cli::Table::integer(static_cast<long>(
                         crowd.backend_stats.kernel_launches))});
    }
  }
  table.print();
  std::printf("\nexpected shape: speedup grows with W and shrinks with N — "
              "the batch amortizes per-launch fees, which dominate small-N "
              "wraps; at large N the GEMMs are volume-bound and the two "
              "columns converge. W=1 pays a small bookkeeping overhead.\n\n");
  bench::maybe_write_bench_manifest("batched_walkers", rows);
  return 0;
}
