#include "testing/exact_diag.h"

#include <cmath>
#include <vector>

#include "linalg/eig_sym.h"

namespace dqmc::testing {

namespace {

/// Parity of set bits of `mask` strictly between positions a < b.
int between_parity(unsigned mask, idx a, idx b) {
  if (a > b) std::swap(a, b);
  int count = 0;
  for (idx p = a + 1; p < b; ++p)
    if (mask & (1u << p)) ++count;
  return count % 2;
}

}  // namespace

ExactThermal exact_thermal(const Lattice& lattice, const ModelParams& params) {
  const idx n = lattice.num_sites();
  DQMC_CHECK_MSG(n <= 4, "exact_thermal: Fock space too large");
  const unsigned nmask = 1u << n;
  const idx dim = static_cast<idx>(nmask) * static_cast<idx>(nmask);

  auto state = [&](unsigned up, unsigned dn) -> idx {
    return static_cast<idx>(up) * static_cast<idx>(nmask) + static_cast<idx>(dn);
  };

  // Dense Hamiltonian. Ordering: up modes 0..n-1 then dn modes 0..n-1, so
  // same-spin hopping signs depend only on that spin's mask.
  linalg::Matrix h = linalg::Matrix::zero(dim, dim);
  for (unsigned up = 0; up < nmask; ++up) {
    for (unsigned dn = 0; dn < nmask; ++dn) {
      const idx row = state(up, dn);
      // Diagonal: interaction + chemical potential.
      double diag = 0.0;
      for (idx i = 0; i < n; ++i) {
        const double nu_i = (up >> i) & 1u;
        const double nd_i = (dn >> i) & 1u;
        diag += params.u * (nu_i - 0.5) * (nd_i - 0.5);
        diag -= params.mu * (nu_i + nd_i);
      }
      h(row, row) += diag;

      // Hopping: -t c^dag_a c_b (+ h.c. arrives from the mirrored bond).
      for (const auto& bond : lattice.bonds()) {
        const double hop = bond.interlayer ? params.t_perp : params.t;
        for (int dir = 0; dir < 2; ++dir) {
          const idx a = dir ? bond.b : bond.a;
          const idx b = dir ? bond.a : bond.b;
          // up spin: c^dag_a c_b |up>
          if (((up >> b) & 1u) && !((up >> a) & 1u)) {
            const unsigned up2 = (up ^ (1u << b)) | (1u << a);
            const int sign = between_parity(up, a, b) ? -1 : 1;
            h(state(up2, dn), row) += -hop * sign;
          }
          // dn spin.
          if (((dn >> b) & 1u) && !((dn >> a) & 1u)) {
            const unsigned dn2 = (dn ^ (1u << b)) | (1u << a);
            const int sign = between_parity(dn, a, b) ? -1 : 1;
            h(state(up, dn2), row) += -hop * sign;
          }
        }
      }
    }
  }

  linalg::SymmetricEigen eig = linalg::eig_sym(h, 1e-9);

  // Boltzmann weights relative to the ground state (avoids overflow).
  const double e0 = eig.eigenvalues[0];
  std::vector<double> w(static_cast<std::size_t>(dim));
  double z = 0.0;
  for (idx m = 0; m < dim; ++m) {
    w[static_cast<std::size_t>(m)] =
        std::exp(-params.beta * (eig.eigenvalues[m] - e0));
    z += w[static_cast<std::size_t>(m)];
  }

  // Thermal probability of each Fock state: p(s) = sum_m (w_m/Z) |<s|m>|^2.
  // Diagonal observables then reduce to plain sums over the 4^N states.
  std::vector<double> p(static_cast<std::size_t>(dim), 0.0);
  for (idx m = 0; m < dim; ++m) {
    const double wm = w[static_cast<std::size_t>(m)] / z;
    for (idx s = 0; s < dim; ++s) {
      const double c = eig.eigenvectors(s, m);
      p[static_cast<std::size_t>(s)] += wm * c * c;
    }
  }
  auto thermal_diag = [&](auto&& f) {
    double acc = 0.0;
    for (unsigned up = 0; up < nmask; ++up) {
      for (unsigned dn = 0; dn < nmask; ++dn) {
        acc += p[static_cast<std::size_t>(state(up, dn))] * f(up, dn);
      }
    }
    return acc;
  };

  ExactThermal out;
  out.density = thermal_diag([&](unsigned up, unsigned dn) {
                  return static_cast<double>(__builtin_popcount(up) +
                                             __builtin_popcount(dn));
                }) /
                static_cast<double>(n);
  out.double_occupancy = thermal_diag([&](unsigned up, unsigned dn) {
                           return static_cast<double>(
                               __builtin_popcount(up & dn));
                         }) /
                         static_cast<double>(n);
  out.moment_sq = thermal_diag([&](unsigned up, unsigned dn) {
                    // sum_i (nu_i - nd_i)^2 = count(up XOR dn)
                    return static_cast<double>(__builtin_popcount(up ^ dn));
                  }) /
                  static_cast<double>(n);

  // Kinetic energy per site: <H_T> = <H> - <diagonal part>.
  double h_avg = 0.0;
  for (idx m = 0; m < dim; ++m)
    h_avg += w[static_cast<std::size_t>(m)] * eig.eigenvalues[m];
  h_avg /= z;
  const double diag_avg = thermal_diag([&](unsigned up, unsigned dn) {
    double d = 0.0;
    for (idx i = 0; i < n; ++i) {
      const double nu_i = (up >> i) & 1u;
      const double nd_i = (dn >> i) & 1u;
      d += params.u * (nu_i - 0.5) * (nd_i - 0.5) - params.mu * (nu_i + nd_i);
    }
    return d;
  });
  out.kinetic_energy = (h_avg - diag_avg) / static_cast<double>(n);

  // C_zz(d): translation-averaged S_z S_z correlations.
  out.spin_corr = linalg::Vector::zero(lattice.num_displacements());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const double c = thermal_diag([&](unsigned up, unsigned dn) {
        const double mi = static_cast<double>((up >> i) & 1u) -
                          static_cast<double>((dn >> i) & 1u);
        const double mj = static_cast<double>((up >> j) & 1u) -
                          static_cast<double>((dn >> j) & 1u);
        return mi * mj;
      });
      out.spin_corr[lattice.displacement_index(j, i)] += c;
    }
  }
  for (idx d = 0; d < out.spin_corr.size(); ++d)
    out.spin_corr[d] /= static_cast<double>(n);

  return out;
}

}  // namespace dqmc::testing
