// Shared gtest helpers: naive reference kernels and dense matchers.
#pragma once

#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace dqmc::testing {

using linalg::ConstMatrixView;
using linalg::idx;
using linalg::Matrix;
using linalg::Vector;

/// Naive O(mnk) reference GEMM: C = alpha*op(A)*op(B) + beta*C.
Matrix reference_gemm(bool transa, bool transb, double alpha,
                      ConstMatrixView a, ConstMatrixView b, double beta,
                      ConstMatrixView c);

/// Naive matrix product A*B.
Matrix reference_matmul(ConstMatrixView a, ConstMatrixView b);

/// Naive inverse via Gauss-Jordan with partial pivoting (long double
/// accumulation) — the independent oracle for LU / Green's function tests.
Matrix reference_inverse(ConstMatrixView a);

/// Max elementwise |a - b|.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// EXPECT that two matrices agree elementwise within `tol`.
#define EXPECT_MATRIX_NEAR(a, b, tol)                                   \
  do {                                                                  \
    const double dqmc_mad = ::dqmc::testing::max_abs_diff((a), (b));    \
    EXPECT_LE(dqmc_mad, (tol)) << "matrices differ by " << dqmc_mad;    \
  } while (0)

/// ||I - Q^T Q||_max: orthogonality defect.
double orthogonality_defect(ConstMatrixView q);

}  // namespace dqmc::testing
