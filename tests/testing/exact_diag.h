// Brute-force many-body exact diagonalization of the Hubbard model on tiny
// lattices — the independent physics oracle for the DQMC integration tests.
//
// The full Fock space (4^N states) is enumerated as (up-mask, dn-mask)
// pairs with Jordan-Wigner fermion signs; H is diagonalized densely, and
// thermal expectation values evaluated exactly. Capped at N = 4 (dim 256).
#pragma once

#include "hubbard/lattice.h"
#include "hubbard/model.h"
#include "linalg/matrix.h"

namespace dqmc::testing {

using hubbard::Lattice;
using hubbard::ModelParams;
using linalg::idx;

/// Exact thermal expectation values at the model's (beta, U, mu).
/// Uses the same particle-hole symmetric convention as ModelParams:
/// H = -t sum c^dag c + U sum (n_up - 1/2)(n_dn - 1/2) - mu sum n.
struct ExactThermal {
  double density;           ///< <n> per site (both spins)
  double double_occupancy;  ///< <n_up n_dn> per site
  double kinetic_energy;    ///< hopping energy per site
  double moment_sq;         ///< <(n_up - n_dn)^2> per site
  /// C_zz(d) per displacement index (Lattice::displacement_index).
  linalg::Vector spin_corr;
};

ExactThermal exact_thermal(const Lattice& lattice, const ModelParams& params);

}  // namespace dqmc::testing
