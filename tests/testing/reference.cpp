#include "testing/test_utils.h"

#include <cmath>
#include <vector>

namespace dqmc::testing {

Matrix reference_gemm(bool transa, bool transb, double alpha,
                      ConstMatrixView a, ConstMatrixView b, double beta,
                      ConstMatrixView c) {
  const idx m = transa ? a.cols() : a.rows();
  const idx k = transa ? a.rows() : a.cols();
  const idx n = transb ? b.rows() : b.cols();
  Matrix out = Matrix::copy_of(c);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      long double acc = 0.0L;
      for (idx p = 0; p < k; ++p) {
        const double av = transa ? a(p, i) : a(i, p);
        const double bv = transb ? b(j, p) : b(p, j);
        acc += static_cast<long double>(av) * bv;
      }
      out(i, j) = static_cast<double>(alpha * acc + beta * c(i, j));
    }
  }
  return out;
}

Matrix reference_matmul(ConstMatrixView a, ConstMatrixView b) {
  Matrix zero = Matrix::zero(a.rows(), b.cols());
  return reference_gemm(false, false, 1.0, a, b, 0.0, zero);
}

Matrix reference_inverse(ConstMatrixView a) {
  const idx n = a.rows();
  // Gauss-Jordan on [A | I] in long double.
  std::vector<long double> w(static_cast<std::size_t>(n) * 2 * n);
  auto at = [&](idx i, idx j) -> long double& {
    return w[static_cast<std::size_t>(i) * 2 * n + j];
  };
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) at(i, j) = a(i, j);
    for (idx j = 0; j < n; ++j) at(i, n + j) = (i == j) ? 1.0L : 0.0L;
  }
  for (idx k = 0; k < n; ++k) {
    idx pvt = k;
    for (idx i = k + 1; i < n; ++i)
      if (std::fabs(static_cast<double>(at(i, k))) >
          std::fabs(static_cast<double>(at(pvt, k))))
        pvt = i;
    if (pvt != k)
      for (idx j = 0; j < 2 * n; ++j) std::swap(at(k, j), at(pvt, j));
    const long double d = at(k, k);
    for (idx j = 0; j < 2 * n; ++j) at(k, j) /= d;
    for (idx i = 0; i < n; ++i) {
      if (i == k) continue;
      const long double f = at(i, k);
      if (f == 0.0L) continue;
      for (idx j = 0; j < 2 * n; ++j) at(i, j) -= f * at(k, j);
    }
  }
  Matrix inv(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) inv(i, j) = static_cast<double>(at(i, n + j));
  return inv;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j)
    for (idx i = 0; i < a.rows(); ++i)
      best = std::max(best, std::fabs(a(i, j) - b(i, j)));
  return best;
}

double orthogonality_defect(ConstMatrixView q) {
  Matrix zero = Matrix::zero(q.cols(), q.cols());
  Matrix qtq = reference_gemm(true, false, 1.0, q, q, 0.0, zero);
  double best = 0.0;
  for (idx j = 0; j < qtq.cols(); ++j)
    for (idx i = 0; i < qtq.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      best = std::max(best, std::fabs(qtq(i, j) - target));
    }
  return best;
}

}  // namespace dqmc::testing
