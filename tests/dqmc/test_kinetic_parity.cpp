// Dense-vs-checkerboard parity at the simulation level: with
// kinetic = checkerboard the full DQMC pipeline must stay bitwise
// deterministic — across backends, walker-batch widths, repeated runs,
// checkpoint kill/resume, and supervised fault recovery — while the physics
// agrees with the dense exponential (and with many-body ED) to within
// jackknife bars plus the documented O(dtau^2) splitting floor.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dqmc/checkpoint.h"
#include "dqmc/engine.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/health.h"
#include "testing/exact_diag.h"

namespace dqmc::core {
namespace {

using hubbard::KineticKind;

/// Short 4x4 checkerboard run — big enough to cross cluster boundaries and
/// exercise both spin chains, small enough for the quick tier.
SimulationConfig cb_config() {
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 4;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 16;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 8;
  cfg.engine.kinetic = KineticKind::kCheckerboard;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 91;
  return cfg;
}

class KineticParity : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

TEST_F(KineticParity, TrajectoryHashMatchesAcrossBackends) {
  SimulationConfig cfg = cb_config();
  cfg.engine.backend = backend::BackendKind::kHost;
  const SimulationResults host = run_simulation(cfg);
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  const SimulationResults gpusim = run_simulation(cfg);
  EXPECT_EQ(host.trajectory_hash, gpusim.trajectory_hash);
  EXPECT_EQ(host.measurements.density().mean,
            gpusim.measurements.density().mean);
}

TEST_F(KineticParity, RepeatedRunsAreBitwiseIdentical) {
  const SimulationConfig cfg = cb_config();
  const SimulationResults a = run_simulation(cfg);
  const SimulationResults b = run_simulation(cfg);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
  EXPECT_EQ(a.measurements.double_occupancy().mean,
            b.measurements.double_occupancy().mean);
}

TEST_F(KineticParity, WalkerBatchWidthDoesNotForkTrajectories) {
  // Three chains: per-chain tasks (W=0), degenerate crowds (W=1), and one
  // full crowd (W=3) must merge to the same chain-order-sensitive hash, on
  // both backends.
  for (const backend::BackendKind kind :
       {backend::BackendKind::kHost, backend::BackendKind::kGpuSim}) {
    SimulationConfig cfg = cb_config();
    cfg.engine.backend = kind;
    cfg.warmup_sweeps = 2;
    cfg.measurement_sweeps = 4;
    std::uint64_t hashes[3];
    const idx widths[3] = {0, 1, 3};
    for (int i = 0; i < 3; ++i) {
      cfg.walker_batch = widths[i];
      hashes[i] = run_parallel_simulation(cfg, 3).trajectory_hash;
    }
    EXPECT_EQ(hashes[0], hashes[1]) << backend::backend_kind_name(kind);
    EXPECT_EQ(hashes[0], hashes[2]) << backend::backend_kind_name(kind);
  }
}

TEST_F(KineticParity, KillResumeReplaysBitwise) {
  // A checkerboard chain interrupted at a sweep boundary and restored from
  // its checkpoint must replay the undisturbed trajectory bit for bit.
  const SimulationConfig cfg = cb_config();
  const auto lattice = cfg.make_lattice();
  DqmcEngine ref(lattice, cfg.model, cfg.engine, cfg.seed);
  ref.initialize();
  for (int s = 0; s < 4; ++s) ref.sweep();

  DqmcEngine victim(lattice, cfg.model, cfg.engine, cfg.seed);
  victim.initialize();
  for (int s = 0; s < 2; ++s) victim.sweep();
  std::stringstream saved;
  save_checkpoint(saved, victim);

  DqmcEngine resumed(lattice, cfg.model, cfg.engine, cfg.seed + 999);
  load_checkpoint(saved, resumed);
  for (int s = 0; s < 2; ++s) resumed.sweep();
  EXPECT_EQ(trajectory_hash(ref), trajectory_hash(resumed));
}

TEST_F(KineticParity, SupervisedFaultRecoveryPreservesHash) {
  // An injected backend fault mid-run must recover onto the bitwise
  // trajectory of the clean supervised run — structured applies included.
  SimulationConfig cfg = cb_config();
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 2;

  const SimulationResults clean = run_supervised_simulation(cfg, policy);
  ASSERT_EQ(clean.fault_report.faults, 0u);

  fault::failpoints().arm("backend.enqueue.gpusim", 40);
  const SimulationResults faulted = run_supervised_simulation(cfg, policy);
  EXPECT_GT(faulted.fault_report.faults, 0u);
  EXPECT_EQ(clean.trajectory_hash, faulted.trajectory_hash);
}

TEST_F(KineticParity, DenseAndCheckerboardAgreeWithinErrorBars) {
  // Same seed, same schedule, the one change is the kinetic factor: the
  // trajectories legitimately differ (different operator by O(dtau^2)), but
  // the physics must agree within combined error bars plus a splitting
  // floor of that order. 2x2 keeps the statistics cheap.
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 20;  // dtau = 0.1
  cfg.engine.cluster_size = 5;
  cfg.engine.delay_rank = 4;
  cfg.warmup_sweeps = 200;
  cfg.measurement_sweeps = 800;
  cfg.bins = 10;
  cfg.seed = 92;

  cfg.engine.kinetic = KineticKind::kDense;
  const SimulationResults dense = run_simulation(cfg);
  cfg.engine.kinetic = KineticKind::kCheckerboard;
  const SimulationResults cb = run_simulation(cfg);

  const auto within = [](const char* name, Estimate a, Estimate b,
                         double floor) {
    const double bar =
        4.0 * std::sqrt(a.error * a.error + b.error * b.error) + floor;
    EXPECT_NEAR(a.mean, b.mean, bar) << name;
  };
  within("density", dense.measurements.density(), cb.measurements.density(),
         1e-2);
  within("double_occupancy", dense.measurements.double_occupancy(),
         cb.measurements.double_occupancy(), 1e-2);
  within("kinetic_energy", dense.measurements.kinetic_energy(),
         cb.measurements.kinetic_energy(), 3e-2);
  within("moment_sq", dense.measurements.moment_sq(),
         cb.measurements.moment_sq(), 1e-2);
}

TEST_F(KineticParity, EdCrosscheckAtSmallN) {
  // Checkerboard DQMC vs brute-force many-body ED on the 2x2 cluster:
  // generous bars — jackknife statistics plus the Trotter AND splitting
  // biases the exact oracle does not share.
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 20;
  cfg.engine.cluster_size = 5;
  cfg.engine.delay_rank = 4;
  cfg.engine.kinetic = KineticKind::kCheckerboard;
  cfg.warmup_sweeps = 200;
  cfg.measurement_sweeps = 1200;
  cfg.bins = 12;
  cfg.seed = 93;

  const testing::ExactThermal exact =
      testing::exact_thermal(cfg.make_lattice(), cfg.model);
  const SimulationResults res = run_simulation(cfg);
  const MeasurementAccumulator& m = res.measurements;

  const auto check = [](const char* name, Estimate est, double target,
                        double floor) {
    ASSERT_GT(est.error, 0.0) << name;
    EXPECT_NEAR(est.mean, target, 4.0 * est.error + floor) << name;
  };
  check("density", m.density_jackknife(), exact.density, 2e-2);
  check("double_occupancy", m.double_occupancy_jackknife(),
        exact.double_occupancy, 2e-2);
  check("kinetic_energy", m.kinetic_energy_jackknife(), exact.kinetic_energy,
        4e-2);
  check("moment_sq", m.moment_sq_jackknife(), exact.moment_sq, 2e-2);
}

}  // namespace
}  // namespace dqmc::core
