// Large-beta stability: the SVD stack vs graded QR accumulation, and the
// fp32 wrap precision policy (ctest -L stability; docs/STABILITY.md).
//
// The discriminating oracle is the U = 0 chain (e^{-dtau K})^L, whose
// Green's function AND singular spectrum are known analytically: the
// product is e^{-beta K}, so the exact d-scales are e^{-beta lambda_i} over
// the kinetic eigenvalues. Graded QR keeps G accurate but its d-scales are
// only graded-to-a-factor; the SVD stack's d-scales are singular values,
// accurate in the RELATIVE sense even at e^{-beta W} dynamic range.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "backend/backend.h"
#include "dqmc/engine.h"
#include "dqmc/hs_field.h"
#include "dqmc/rng.h"
#include "dqmc/simulation.h"
#include "dqmc/stabilizer.h"
#include "dqmc/stratification.h"
#include "hubbard/bmatrix.h"
#include "hubbard/free_fermion.h"
#include "linalg/norms.h"
#include "obs/health.h"

namespace dqmc::core {
namespace {

using hubbard::BMatrixFactory;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;

/// Free-fermion chain at inverse temperature beta: L identical factors
/// e^{-dtau K} whose product is exactly e^{-beta K}.
struct FreeChain {
  std::vector<Matrix> factors;
  Vector kinetic_eigenvalues;  ///< ascending
  Matrix exact_greens;         ///< (I + e^{-beta K})^{-1}
};

FreeChain free_chain(idx lattice_l, double beta, idx slices) {
  Lattice lat(lattice_l, lattice_l);
  ModelParams p;
  p.u = 0.0;
  p.beta = beta;
  p.slices = slices;
  BMatrixFactory factory(lat, p);
  HSField h(slices, lat.num_sites());  // irrelevant at U = 0
  FreeChain chain;
  for (idx l = 0; l < slices; ++l) {
    chain.factors.push_back(factory.make_b(h.slice(l), Spin::Up));
  }
  chain.kinetic_eigenvalues = factory.kinetic_eig().eigenvalues;
  chain.exact_greens = hubbard::free_greens_function(lat, p);
  return chain;
}

/// Worst relative error of the accumulated d-scales against the exact
/// singular spectrum e^{-beta lambda} (sorted descending).
double scale_spectrum_error(const Stabilizer& stab, double beta,
                            const Vector& kinetic_eigenvalues) {
  const idx n = stab.n();
  std::vector<double> exact;
  for (idx i = 0; i < n; ++i) {
    exact.push_back(-beta * kinetic_eigenvalues[i]);  // log sigma, descending
  }
  std::sort(exact.begin(), exact.end(), std::greater<double>());
  double worst = 0.0;
  for (idx i = 0; i < n; ++i) {
    // Compare in log space: |log(d) - log(sigma_exact)| is the relative
    // error for well-separated scales and stays finite past 1e+-300.
    const double got = std::log(stab.d()[i]);
    worst = std::max(worst, std::abs(got - exact[static_cast<std::size_t>(i)]));
  }
  return worst;
}

TEST(Stability, SmallBetaStabilizersAgree) {
  // At beta = 2 every strategy is comfortably stable: the SVD stack must
  // reproduce the graded-QR Green's function to near machine accuracy.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.slices = 20;
  BMatrixFactory factory(lat, p);
  HSField h(p.slices, lat.num_sites());
  Rng rng(4242);
  h.randomize(rng);
  std::vector<Matrix> factors;
  for (idx l = 0; l < p.slices; ++l) {
    factors.push_back(factory.make_b(h.slice(l), Spin::Up));
  }
  StratificationEngine graded(16, StratAlgorithm::kPrePivot);
  StratificationEngine svds(16, StratAlgorithm::kSvdStack);
  Matrix g_qr = graded.compute(factors);
  Matrix g_svd = svds.compute(factors);
  EXPECT_LE(linalg::relative_difference(g_svd, g_qr), 1e-10);
}

TEST(Stability, LargeBetaScaleDriftBothSides) {
  // Pinned large-beta regime (beta = 40, dynamic range e^{beta W} ~ 1e139):
  // the graded-QR d-scales drift past the stability threshold while the
  // SVD stack's stay singular-value-exact. Both sides are asserted — if a
  // future change makes graded QR exact here, the threshold (and
  // docs/STABILITY.md's guidance) needs re-pinning.
  const double beta = 40.0;
  const idx slices = 80;
  FreeChain chain = free_chain(4, beta, slices);
  const idx n = chain.factors[0].rows();

  auto qr = make_stabilizer(n, StratAlgorithm::kPrePivot);
  auto svds = make_stabilizer(n, StratAlgorithm::kSvdStack);
  for (const Matrix& f : chain.factors) {
    qr->push(f);
    svds->push(f);
  }
  const double qr_err = scale_spectrum_error(*qr, beta, chain.kinetic_eigenvalues);
  const double svd_err =
      scale_spectrum_error(*svds, beta, chain.kinetic_eigenvalues);
  std::printf("[probe] beta=%.0f log-scale drift: graded-QR %.3e, "
              "svd-stack %.3e\n",
              beta, qr_err, svd_err);
  // log-space drift threshold: 1e-8 ~ eight digits of relative accuracy.
  const double kLogDriftThreshold = 1e-8;
  EXPECT_GT(qr_err, kLogDriftThreshold)
      << "graded QR unexpectedly singular-value-exact at beta=" << beta;
  EXPECT_LT(svd_err, kLogDriftThreshold);
}

TEST(Stability, LargeBetaGreensStaysAccurateForBothStabilizers) {
  // G itself is what the physics consumes: both strategies must hit the
  // analytic (I + e^{-beta K})^{-1} even at the pinned large beta — the
  // d-scale drift above is about the decomposition's internal labels, not
  // a licence to lose G.
  FreeChain chain = free_chain(4, 40.0, 80);
  std::vector<const Matrix*> order;
  for (const Matrix& f : chain.factors) order.push_back(&f);
  for (StratAlgorithm a :
       {StratAlgorithm::kPrePivot, StratAlgorithm::kSvdStack}) {
    StratificationEngine engine(chain.factors[0].rows(), a);
    Matrix g = engine.compute(order);
    const double err = linalg::relative_difference(g, chain.exact_greens);
    std::printf("[probe] greens err %s: %.3e\n", strat_algorithm_name(a), err);
    EXPECT_LE(err, 1e-9) << strat_algorithm_name(a);
  }
}

TEST(Stability, SvdStackSignMatchesGraded) {
  // chain_det_sign must agree across stabilizers on an interacting chain.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 6.0;
  p.beta = 4.0;
  p.slices = 40;
  BMatrixFactory factory(lat, p);
  HSField h(p.slices, lat.num_sites());
  Rng rng(77);
  h.randomize(rng);
  std::vector<Matrix> factors;
  std::vector<const Matrix*> ptrs;
  for (idx l = 0; l < p.slices; ++l) {
    factors.push_back(factory.make_b(h.slice(l), Spin::Up));
  }
  for (const Matrix& f : factors) ptrs.push_back(&f);
  EXPECT_EQ(chain_det_sign(ptrs, StratAlgorithm::kPrePivot),
            chain_det_sign(ptrs, StratAlgorithm::kSvdStack));
}

core::SimulationConfig precision_config(backend::Precision precision) {
  core::SimulationConfig cfg;
  cfg.lx = 4;
  cfg.ly = 4;
  cfg.model.u = 4.0;
  cfg.model.beta = 4.0;
  cfg.model.slices = 40;
  cfg.engine.cluster_size = 10;
  cfg.engine.precision = precision;
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 6;
  cfg.bins = 3;
  cfg.seed = 314;
  return cfg;
}

TEST(Stability, Fp32WrapsStayUnderTheFp32DriftThreshold) {
  // The precision policy's safety contract: with fp32 wraps and the
  // structural fp64 correction at every stabilization interval, the wrap
  // drift sits ABOVE the fp64 noise floor (the narrowing is real) but
  // BELOW the fp32 health threshold (the correction keeps it bounded).
  obs::health().reset();
  obs::health().set_enabled(true);
  core::SimulationResults res =
      core::run_simulation(precision_config(backend::Precision::kFp32));
  const obs::HealthMonitor::Summary hs = obs::health().summary();
  obs::health().set_enabled(false);
  obs::health().reset();

  ASSERT_GT(hs.wrap_drift.count, 0u);
  std::printf("[probe] fp32 wrap drift: max %.3e mean %.3e\n",
              hs.wrap_drift.max, hs.wrap_drift.mean());
  const obs::HealthThresholds t = obs::health().thresholds();
  EXPECT_LT(hs.wrap_drift.max, t.max_wrap_drift_fp32);
  // ...but visibly fp32 (healthy narrowed drift ~1e-2), not secretly fp64
  // (whose drift at this beta sits near 1e-12).
  EXPECT_GT(hs.wrap_drift.max, 1e-9);
  EXPECT_GT(res.measurements.samples(), 0u);
}

TEST(Stability, Fp32TrajectoryTracksFp64Observables) {
  // fp32 wraps fork the Markov chain (Metropolis decisions see rounded
  // ratios), so trajectories are not bitwise comparable — but over a short
  // run the physics must stay in the same place: observables within a few
  // percent of the fp64 run of the identical configuration.
  core::SimulationResults fp64 =
      core::run_simulation(precision_config(backend::Precision::kFp64));
  core::SimulationResults fp32 =
      core::run_simulation(precision_config(backend::Precision::kFp32));
  const double d64 = fp64.measurements.density().mean;
  const double d32 = fp32.measurements.density().mean;
  std::printf("[probe] density fp64 %.6f fp32 %.6f\n", d64, d32);
  EXPECT_NEAR(d32, d64, 0.05);
  EXPECT_NEAR(fp32.measurements.double_occupancy().mean,
              fp64.measurements.double_occupancy().mean, 0.05);
  EXPECT_NEAR(fp32.measurements.moment_sq().mean,
              fp64.measurements.moment_sq().mean, 0.1);
}

TEST(Stability, Fp64PrecisionPolicyIsBitwiseDefault) {
  // Explicitly requesting fp64 must be the byte-identical default path.
  core::SimulationConfig cfg = precision_config(backend::Precision::kFp64);
  core::SimulationResults a = core::run_simulation(cfg);
  core::SimulationResults b = core::run_simulation(cfg);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
}

TEST(Stability, Fp32IsDeterministicAcrossBackends) {
  // The fp32 kernels run round-on-read on both backends with serial
  // reduction chains: host and gpusim must produce the same trajectory.
  core::SimulationConfig cfg = precision_config(backend::Precision::kFp32);
  cfg.warmup_sweeps = 1;
  cfg.measurement_sweeps = 3;
  core::SimulationResults host = core::run_simulation(cfg);
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  core::SimulationResults gpusim = core::run_simulation(cfg);
  EXPECT_EQ(host.trajectory_hash, gpusim.trajectory_hash);
}

}  // namespace
}  // namespace dqmc::core
