#include "dqmc/dynamic_measurements.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dqmc/measurements.h"
#include "hubbard/free_fermion.h"
#include "linalg/util.h"

namespace dqmc::core {
namespace {

using hubbard::BMatrixFactory;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;

struct DynamicFixture : ::testing::Test {
  static TimeDisplaced displaced(const Lattice& lat, const ModelParams& p,
                                 const HSField& field, Spin s) {
    BMatrixFactory factory(lat, p);
    TimeDisplacedGreens tdg(factory, field, 5);
    return tdg.compute(s);
  }
};

TEST_F(DynamicFixture, ChiAtTauZeroMatchesEqualTimeStructureFactor) {
  // chi_AF(0) must equal the S(pi,pi) of the equal-time measurement module
  // on the same configuration (same Wick contractions, tau -> 0 limit).
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 4.0;
  p.beta = 3.0;
  p.slices = 15;
  HSField field(p.slices, 16);
  Rng rng(2024);
  field.randomize(rng);

  TimeDisplaced up = displaced(lat, p, field, Spin::Up);
  TimeDisplaced dn = displaced(lat, p, field, Spin::Down);
  DynamicSample dyn = measure_dynamic(lat, p.dtau(), up, dn);

  EqualTimeSample eq =
      measure_equal_time(lat, p, up.g_tautau[0], dn.g_tautau[0]);
  EXPECT_NEAR(dyn.chi_af[0], eq.af_structure_factor, 1e-8);
}

TEST_F(DynamicFixture, FreeFermionChiIsSpinSymmetricAndPositive) {
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 4.0;
  p.slices = 20;
  HSField field(p.slices, 16);

  TimeDisplaced up = displaced(lat, p, field, Spin::Up);
  TimeDisplaced dn = displaced(lat, p, field, Spin::Down);
  DynamicSample dyn = measure_dynamic(lat, p.dtau(), up, dn);

  for (idx l = 0; l <= p.slices; ++l) {
    EXPECT_GT(dyn.chi_af[l], 0.0) << l;
  }
  EXPECT_GT(dyn.chi_af_integrated, 0.0);
  // Symmetry chi(tau) = chi(beta - tau) for this static field.
  for (idx l = 0; l <= p.slices; ++l) {
    EXPECT_NEAR(dyn.chi_af[l], dyn.chi_af[p.slices - l], 1e-8) << l;
  }
}

TEST_F(DynamicFixture, GlocEndpointsSatisfySumRule) {
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 4.0;
  p.beta = 4.0;
  p.slices = 20;
  HSField field(p.slices, 16);
  Rng rng(4048);
  field.randomize(rng);

  TimeDisplaced up = displaced(lat, p, field, Spin::Up);
  TimeDisplaced dn = displaced(lat, p, field, Spin::Down);
  DynamicSample dyn = measure_dynamic(lat, p.dtau(), up, dn);
  EXPECT_NEAR(dyn.gloc[0] + dyn.gloc[p.slices], 1.0, 1e-8);
}

TEST_F(DynamicFixture, FreeFermionGlocMatchesSpectralSum) {
  // Gloc(tau) at U=0: (1/N) sum_k e^{-tau e_k}/(1 + e^{-beta e_k}).
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 5.0;
  p.slices = 25;
  HSField field(p.slices, 16);

  TimeDisplaced up = displaced(lat, p, field, Spin::Up);
  TimeDisplaced dn = displaced(lat, p, field, Spin::Down);
  DynamicSample dyn = measure_dynamic(lat, p.dtau(), up, dn);

  for (idx l = 0; l <= p.slices; ++l) {
    const double tau = p.dtau() * static_cast<double>(l);
    double expected = 0.0;
    for (const auto& k : lat.momenta()) {
      const double e = hubbard::free_dispersion(p, k);
      expected += (e >= 0.0)
                      ? std::exp(-tau * e) / (1.0 + std::exp(-p.beta * e))
                      : std::exp((p.beta - tau) * e) /
                            (std::exp(p.beta * e) + 1.0);
    }
    expected /= static_cast<double>(lat.num_sites());
    EXPECT_NEAR(dyn.gloc[l], expected, 1e-9) << "tau slice " << l;
  }
}

TEST_F(DynamicFixture, FreeFermionGkTauMatchesDispersionDecay) {
  // At U = 0, G(k, tau) = e^{-tau eps_k} / (1 + e^{-beta eps_k}) exactly.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 3.0;
  p.slices = 15;
  HSField field(p.slices, 16);

  TimeDisplaced up = displaced(lat, p, field, Spin::Up);
  TimeDisplaced dn = displaced(lat, p, field, Spin::Down);
  DynamicSample dyn = measure_dynamic(lat, p.dtau(), up, dn);

  const auto ks = lat.momenta();
  ASSERT_EQ(dyn.gk_tau.rows(), 16);
  ASSERT_EQ(dyn.gk_tau.cols(), 16);
  for (std::size_t kidx = 0; kidx < ks.size(); ++kidx) {
    const double e = hubbard::free_dispersion(p, ks[kidx]);
    for (idx l = 0; l <= p.slices; ++l) {
      const double tau = p.dtau() * static_cast<double>(l);
      const double expected =
          (e >= 0.0) ? std::exp(-tau * e) / (1.0 + std::exp(-p.beta * e))
                     : std::exp((p.beta - tau) * e) /
                           (std::exp(p.beta * e) + 1.0);
      EXPECT_NEAR(dyn.gk_tau(static_cast<idx>(kidx), l), expected, 1e-9)
          << "k " << kidx << " slice " << l;
    }
  }
}

TEST(DynamicAccumulator, AccumulatesWithSign) {
  DynamicAccumulator acc(4, 2);
  DynamicSample s;
  s.gloc = Vector::constant(5, 0.5);
  s.chi_af = Vector::constant(5, 2.0);
  s.chi_af_integrated = 1.5;
  acc.add(s, 1);
  acc.add(s, 1);
  EXPECT_EQ(acc.samples(), 2);
  EXPECT_NEAR(acc.gloc(2).mean, 0.5, 1e-14);
  EXPECT_NEAR(acc.chi_af(0).mean, 2.0, 1e-14);
  EXPECT_NEAR(acc.chi_af_integrated().mean, 1.5, 1e-14);
}

}  // namespace
}  // namespace dqmc::core
