// Walker crowds (dqmc/walker_batch.h): the batched lockstep path must be
// bitwise identical per walker to the single-walker engine path — at every
// crowd size, on both backends, and under any thread budget.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dqmc/checkpoint.h"
#include "dqmc/simulation.h"
#include "dqmc/walker_batch.h"
#include "parallel/topology.h"

namespace dqmc::core {
namespace {

struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

SimulationConfig tiny_config(backend::BackendKind kind) {
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 10;
  cfg.engine.cluster_size = 5;
  cfg.engine.delay_rank = 8;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 6;
  cfg.measurement_sweeps = 12;
  cfg.bins = 4;
  cfg.seed = 11;
  return cfg;
}

class WalkerBatchBackends
    : public ::testing::TestWithParam<backend::BackendKind> {};

// W = 1 crowds route every chain through the batched path (2 spin items per
// composite); the full merged trajectory hash must match the unbatched
// per-chain-task path bit for bit.
TEST_P(WalkerBatchBackends, W1CrowdBitwiseMatchesUnbatched) {
  SimulationConfig cfg = tiny_config(GetParam());
  SimulationResults plain = run_parallel_simulation(cfg, 2);
  cfg.walker_batch = 1;
  SimulationResults crowd = run_parallel_simulation(cfg, 2);
  EXPECT_EQ(plain.trajectory_hash, crowd.trajectory_hash);
  EXPECT_DOUBLE_EQ(plain.measurements.density().mean,
                   crowd.measurements.density().mean);
  EXPECT_DOUBLE_EQ(plain.measurements.double_occupancy().mean,
                   crowd.measurements.double_occupancy().mean);
  EXPECT_EQ(crowd.batch_walkers, 1);
  EXPECT_EQ(crowd.batch_crowds, 2);
}

// W > 1: every walker of a crowd must follow the exact trajectory of the
// corresponding solo engine, walker by walker.
TEST_P(WalkerBatchBackends, CrowdMatchesSoloEnginesWalkerByWalker) {
  const SimulationConfig cfg = tiny_config(GetParam());
  const Lattice lattice = cfg.make_lattice();
  const std::vector<std::uint64_t> seeds = {11, 12, 13};

  WalkerBatch batch(lattice, cfg.model, cfg.engine, seeds);
  batch.initialize_all();
  for (idx sweep = 0; sweep < 5; ++sweep) batch.sweep_all();

  for (std::size_t w = 0; w < seeds.size(); ++w) {
    DqmcEngine solo(lattice, cfg.model, cfg.engine, seeds[w]);
    solo.initialize();
    for (idx sweep = 0; sweep < 5; ++sweep) solo.sweep();
    EXPECT_EQ(trajectory_hash(solo),
              trajectory_hash(batch.engine(static_cast<idx>(w))))
        << "walker " << w << " diverged from its solo engine";
  }
}

// Crowd partitioning: W dividing the chain count and W leaving a remainder
// crowd must both reproduce the unbatched merged results exactly.
TEST_P(WalkerBatchBackends, PartitionShapesMatchUnbatched) {
  SimulationConfig cfg = tiny_config(GetParam());
  cfg.measurement_sweeps = 8;
  SimulationResults plain = run_parallel_simulation(cfg, 5);

  cfg.walker_batch = 4;
  SimulationResults crowd4 = run_parallel_simulation(cfg, 5);
  EXPECT_EQ(plain.trajectory_hash, crowd4.trajectory_hash);
  EXPECT_EQ(crowd4.batch_crowds, 2);  // 4 + 1

  cfg.walker_batch = 2;
  SimulationResults crowd2 = run_parallel_simulation(cfg, 5);
  EXPECT_EQ(plain.trajectory_hash, crowd2.trajectory_hash);
  EXPECT_EQ(crowd2.batch_crowds, 3);  // 2 + 2 + 1
  EXPECT_DOUBLE_EQ(plain.measurements.af_structure_factor().mean,
                   crowd2.measurements.af_structure_factor().mean);
}

// The thread budget must not leak into any walker's trajectory.
TEST_P(WalkerBatchBackends, ThreadCountDoesNotChangeTrajectories) {
  SimulationConfig cfg = tiny_config(GetParam());
  cfg.walker_batch = 3;
  cfg.measurement_sweeps = 6;
  std::uint64_t reference = 0;
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    SimulationResults r = run_parallel_simulation(cfg, 3);
    if (reference == 0) {
      reference = r.trajectory_hash;
    } else {
      EXPECT_EQ(reference, r.trajectory_hash)
          << "thread budget " << threads << " forked a trajectory";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, WalkerBatchBackends,
                         ::testing::Values(backend::BackendKind::kHost,
                                           backend::BackendKind::kGpuSim),
                         [](const auto& pinfo) {
                           return pinfo.param == backend::BackendKind::kHost
                                      ? "host"
                                      : "gpusim";
                         });

// Crowd wraps keep per-walker device residency: after warmup most slices
// wrap a G no Metropolis accept touched on at least one spin, so uploads
// must be getting skipped for every walker.
TEST(WalkerBatch, TracksPerWalkerResidency) {
  const SimulationConfig cfg = tiny_config(backend::BackendKind::kGpuSim);
  const Lattice lattice = cfg.make_lattice();
  WalkerBatch batch(lattice, cfg.model, cfg.engine, {11, 12});
  batch.initialize_all();
  for (idx sweep = 0; sweep < 4; ++sweep) batch.sweep_all();
  for (idx w = 0; w < batch.walkers(); ++w) {
    EXPECT_GT(batch.wrap_uploads_skipped(w), 0u) << "walker " << w;
  }
}

// Measurement hooks fire per walker in walker order at each slice boundary.
TEST(WalkerBatch, SliceHooksSeeFlushedGreens) {
  const SimulationConfig cfg = tiny_config(backend::BackendKind::kHost);
  const Lattice lattice = cfg.make_lattice();
  WalkerBatch batch(lattice, cfg.model, cfg.engine, {21, 22});
  batch.initialize_all();
  idx calls = 0;
  batch.sweep_all([&](idx w, idx slice) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 2);
    EXPECT_GE(slice, 0);
    EXPECT_LT(slice, cfg.model.slices);
    ++calls;
  });
  EXPECT_EQ(calls, 2 * cfg.model.slices);
}

TEST(WalkerBatch, RejectsEmptyCrowdAndBadConfig) {
  const SimulationConfig cfg = tiny_config(backend::BackendKind::kHost);
  const Lattice lattice = cfg.make_lattice();
  EXPECT_THROW(WalkerBatch(lattice, cfg.model, cfg.engine, {}),
               InvalidArgument);
  SimulationConfig bad = cfg;
  bad.walker_batch = -1;
  EXPECT_THROW(run_parallel_simulation(bad, 2), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
