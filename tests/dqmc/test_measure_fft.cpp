// Direct vs FFT measurement parity through the whole pipeline: the two
// kernels must agree to 1e-10 on every observable over the same Green's
// functions, the Markov chain must be bitwise IDENTICAL under either mode
// (measurements never touch the trajectory), and the FFT path must honor
// the repo-wide determinism contract — bitwise means across thread counts,
// backends, walker-batch widths, and a kill-and-resume fleet run.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "backend/backend.h"
#include "dqmc/dynamic_measurements.h"
#include "dqmc/measurements.h"
#include "dqmc/rng.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "fleet/coordinator.h"
#include "parallel/topology.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;

constexpr double kParityTol = 1e-10;

struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

Matrix synthetic_greens(Rng& rng, idx n) {
  Matrix g(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      g(i, j) = (i == j ? 0.5 : 0.0) + 0.2 * (rng.uniform() - 0.5);
    }
  }
  return g;
}

void expect_vector_near(const Vector& a, const Vector& b, double tol,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (idx i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << what << " at " << i;
  }
}

void expect_vector_bitwise(const Vector& a, const Vector& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (idx i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " at " << i;
  }
}

/// Short 4x4 run with dynamic measurements on — big enough to cross
/// cluster boundaries, small enough for the quick tier.
SimulationConfig fft_config() {
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 4;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 12;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 8;
  cfg.engine.measure = MeasureKind::kFft;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.measure_dynamic_interval = 4;
  cfg.bins = 4;
  cfg.seed = 131;
  return cfg;
}

class MeasureFft : public ::testing::Test {
 protected:
  void SetUp() override { fault::failpoints().disarm_all(); }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

TEST_F(MeasureFft, EqualTimeParityOnSyntheticGreens) {
  Rng rng(211);
  for (const Lattice& lat :
       {Lattice(4, 4), Lattice(5, 3), Lattice(4, 4, 2), Lattice(3, 5, 3)}) {
    const hubbard::ModelParams params;
    const idx n = lat.num_sites();
    const Matrix gup = synthetic_greens(rng, n);
    const Matrix gdn = synthetic_greens(rng, n);

    MeasurementWorkspace direct_ws(lat, MeasureKind::kDirect);
    MeasurementWorkspace fft_ws(lat, MeasureKind::kFft);
    const EqualTimeSample d =
        measure_equal_time(lat, params, gup, gdn, direct_ws);
    const EqualTimeSample f = measure_equal_time(lat, params, gup, gdn, fft_ws);

    // The O(N) local terms run the same code in both modes; the
    // translation-averaged ones differ only by summation order.
    EXPECT_EQ(d.density, f.density);
    EXPECT_EQ(d.double_occupancy, f.double_occupancy);
    EXPECT_EQ(d.kinetic_energy, f.kinetic_energy);
    EXPECT_NEAR(d.moment_sq, f.moment_sq, kParityTol);
    EXPECT_NEAR(d.af_structure_factor, f.af_structure_factor, kParityTol);
    EXPECT_NEAR(d.pair_s, f.pair_s, kParityTol);
    EXPECT_NEAR(d.pair_d, f.pair_d, kParityTol);
    expect_vector_near(d.momentum_dist, f.momentum_dist, kParityTol,
                       "momentum_dist");
    expect_vector_near(d.spin_corr, f.spin_corr, kParityTol, "spin_corr");
  }
}

TEST_F(MeasureFft, DynamicParityOnSyntheticGreens) {
  Rng rng(223);
  for (const Lattice& lat : {Lattice(4, 4), Lattice(3, 3, 2)}) {
    const idx n = lat.num_sites();
    const idx slices = 6;
    TimeDisplaced up, dn;
    for (idx l = 0; l <= slices; ++l) {
      up.g_tau0.push_back(synthetic_greens(rng, n));
      up.g_0tau.push_back(synthetic_greens(rng, n));
      up.g_tautau.push_back(synthetic_greens(rng, n));
      dn.g_tau0.push_back(synthetic_greens(rng, n));
      dn.g_0tau.push_back(synthetic_greens(rng, n));
      dn.g_tautau.push_back(synthetic_greens(rng, n));
    }

    MeasurementWorkspace direct_ws(lat, MeasureKind::kDirect);
    MeasurementWorkspace fft_ws(lat, MeasureKind::kFft);
    const DynamicSample d = measure_dynamic(lat, 0.1, up, dn, direct_ws);
    const DynamicSample f = measure_dynamic(lat, 0.1, up, dn, fft_ws);

    expect_vector_near(d.gloc, f.gloc, kParityTol, "gloc");
    expect_vector_near(d.chi_af, f.chi_af, kParityTol, "chi_af");
    EXPECT_NEAR(d.chi_af_integrated, f.chi_af_integrated, kParityTol);
    ASSERT_EQ(d.gk_tau.rows(), f.gk_tau.rows());
    ASSERT_EQ(d.gk_tau.cols(), f.gk_tau.cols());
    for (idx c = 0; c < d.gk_tau.cols(); ++c) {
      for (idx r = 0; r < d.gk_tau.rows(); ++r) {
        EXPECT_NEAR(d.gk_tau(r, c), f.gk_tau(r, c), kParityTol)
            << "gk_tau(" << r << "," << c << ")";
      }
    }
  }
}

TEST_F(MeasureFft, FullRunKeepsTrajectoryAndTracksDirectObservables) {
  SimulationConfig cfg = fft_config();
  cfg.engine.measure = MeasureKind::kDirect;
  const SimulationResults direct = run_simulation(cfg);
  cfg.engine.measure = MeasureKind::kFft;
  const SimulationResults fft = run_simulation(cfg);

  // Measurements never touch the Markov chain: the trajectories are the
  // same bits, so every observable difference is pure summation order.
  EXPECT_EQ(direct.trajectory_hash, fft.trajectory_hash);
  EXPECT_EQ(direct.sweep_stats.proposed, fft.sweep_stats.proposed);
  EXPECT_EQ(direct.sweep_stats.accepted, fft.sweep_stats.accepted);
  ASSERT_EQ(direct.measurements.samples(), fft.measurements.samples());

  const auto& dm = direct.measurements;
  const auto& fm = fft.measurements;
  EXPECT_EQ(dm.density().mean, fm.density().mean);
  EXPECT_EQ(dm.double_occupancy().mean, fm.double_occupancy().mean);
  EXPECT_EQ(dm.kinetic_energy().mean, fm.kinetic_energy().mean);
  EXPECT_NEAR(dm.moment_sq().mean, fm.moment_sq().mean, kParityTol);
  EXPECT_NEAR(dm.af_structure_factor().mean, fm.af_structure_factor().mean,
              kParityTol);
  EXPECT_NEAR(dm.pair_s().mean, fm.pair_s().mean, kParityTol);
  EXPECT_NEAR(dm.pair_d().mean, fm.pair_d().mean, kParityTol);
  expect_vector_near(dm.momentum_dist_means(), fm.momentum_dist_means(),
                     kParityTol, "momentum_dist means");
  expect_vector_near(dm.spin_corr_means(), fm.spin_corr_means(), kParityTol,
                     "spin_corr means");

  ASSERT_EQ(direct.dynamic.samples(), fft.dynamic.samples());
  EXPECT_NEAR(direct.dynamic.chi_af_integrated().mean,
              fft.dynamic.chi_af_integrated().mean, kParityTol);
  for (idx l = 0; l <= cfg.model.slices; ++l) {
    EXPECT_NEAR(direct.dynamic.gloc(l).mean, fft.dynamic.gloc(l).mean,
                kParityTol)
        << "gloc tau slice " << l;
  }
}

TEST_F(MeasureFft, FftRunBitwiseAcrossBackends) {
  SimulationConfig cfg = fft_config();
  cfg.engine.backend = backend::BackendKind::kHost;
  const SimulationResults host = run_simulation(cfg);
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  const SimulationResults gpusim = run_simulation(cfg);

  EXPECT_EQ(host.trajectory_hash, gpusim.trajectory_hash);
  EXPECT_EQ(host.measurements.density().mean,
            gpusim.measurements.density().mean);
  EXPECT_EQ(host.measurements.af_structure_factor().mean,
            gpusim.measurements.af_structure_factor().mean);
  expect_vector_bitwise(host.measurements.momentum_dist_means(),
                        gpusim.measurements.momentum_dist_means(),
                        "momentum_dist means");
}

TEST_F(MeasureFft, BatchedCrowdsBitwiseWithUnbatchedChains) {
  SimulationConfig cfg = fft_config();
  const idx chains = 4;
  cfg.walker_batch = 0;
  const SimulationResults unbatched = run_parallel_simulation(cfg, chains);
  cfg.walker_batch = 2;
  const SimulationResults batched = run_parallel_simulation(cfg, chains);

  EXPECT_EQ(unbatched.trajectory_hash, batched.trajectory_hash);
  EXPECT_EQ(unbatched.measurements.density().mean,
            batched.measurements.density().mean);
  EXPECT_EQ(unbatched.measurements.af_structure_factor().mean,
            batched.measurements.af_structure_factor().mean);
  expect_vector_bitwise(unbatched.measurements.spin_corr_means(),
                        batched.measurements.spin_corr_means(),
                        "spin_corr means");
}

TEST_F(MeasureFft, FftMeansBitwiseAcrossThreadCounts) {
  const SimulationConfig cfg = fft_config();
  SimulationResults base = [&] {
    ThreadCountGuard guard(1);
    return run_simulation(cfg);
  }();
  for (const int threads : {2, 8}) {
    ThreadCountGuard guard(threads);
    const SimulationResults got = run_simulation(cfg);
    EXPECT_EQ(base.trajectory_hash, got.trajectory_hash)
        << "thread count " << threads;
    EXPECT_EQ(base.measurements.density().mean,
              got.measurements.density().mean);
    EXPECT_EQ(base.measurements.pair_d().mean, got.measurements.pair_d().mean);
    expect_vector_bitwise(base.measurements.momentum_dist_means(),
                          got.measurements.momentum_dist_means(),
                          "momentum_dist means");
    expect_vector_bitwise(base.measurements.spin_corr_means(),
                          got.measurements.spin_corr_means(),
                          "spin_corr means");
    EXPECT_EQ(base.dynamic.chi_af_integrated().mean,
              got.dynamic.chi_af_integrated().mean);
  }
}

TEST_F(MeasureFft, FleetKillAndResumeAccumulatorStreamsAgree) {
  // SIGKILL a worker mid-run: the recovered fleet's merged accumulator
  // stream under fft measurements must be bitwise what the undisturbed
  // fleet and the single-process supervised run produce.
  SimulationConfig cfg = fft_config();
  cfg.walker_batch = 2;
  SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  const idx chains = 6;

  const SimulationResults single =
      run_supervised_parallel(cfg, policy, chains);

  fleet::FleetConfig fc;
  fc.workers = 2;
  fc.snapshot_interval = 1;
  const fleet::FleetResult undisturbed =
      fleet::run_fleet(cfg, policy, fc, chains);
  EXPECT_EQ(undisturbed.results.trajectory_hash, single.trajectory_hash);

  fleet::FleetConfig kill = fc;
  kill.worker_failpoints = "fleet.worker.kill:10";
  kill.failpoint_worker = 0;
  const fleet::FleetResult disturbed = fleet::run_fleet(cfg, policy, kill, chains);
  EXPECT_EQ(disturbed.fleet.worker_deaths, 1u);

  EXPECT_EQ(disturbed.results.trajectory_hash, single.trajectory_hash);
  const auto& dm = disturbed.results.measurements;
  const auto& um = undisturbed.results.measurements;
  ASSERT_EQ(dm.samples(), um.samples());
  EXPECT_EQ(dm.density().mean, um.density().mean);
  EXPECT_EQ(dm.density().error, um.density().error);
  EXPECT_EQ(dm.af_structure_factor().mean, um.af_structure_factor().mean);
  EXPECT_EQ(dm.pair_d().mean, um.pair_d().mean);
  expect_vector_bitwise(dm.momentum_dist_means(), um.momentum_dist_means(),
                        "momentum_dist means");
  expect_vector_bitwise(dm.spin_corr_means(), um.spin_corr_means(),
                        "spin_corr means");
  EXPECT_EQ(disturbed.results.dynamic.chi_af_integrated().mean,
            undisturbed.results.dynamic.chi_af_integrated().mean);
}

}  // namespace
}  // namespace dqmc::core
