#include "dqmc/hs_field.h"

#include <gtest/gtest.h>

namespace dqmc::core {
namespace {

TEST(HSField, InitializedToPlusOne) {
  HSField h(4, 6);
  for (idx l = 0; l < 4; ++l)
    for (idx i = 0; i < 6; ++i) EXPECT_EQ(h(l, i), 1);
}

TEST(HSField, FlipTogglesSingleEntry) {
  HSField h(3, 3);
  h.flip(1, 2);
  EXPECT_EQ(h(1, 2), -1);
  EXPECT_EQ(h(1, 1), 1);
  EXPECT_EQ(h(0, 2), 1);
  h.flip(1, 2);
  EXPECT_EQ(h(1, 2), 1);
}

TEST(HSField, SliceRowIsContiguousAndMatchesAccessors) {
  HSField h(3, 4);
  h.set(1, 0, -1);
  h.set(1, 3, -1);
  const hs_t* row = h.slice(1);
  EXPECT_EQ(row[0], -1);
  EXPECT_EQ(row[1], 1);
  EXPECT_EQ(row[3], -1);
  // Other slices untouched.
  EXPECT_EQ(h.slice(0)[0], 1);
  EXPECT_EQ(h.slice(2)[3], 1);
}

TEST(HSField, RandomizeProducesBothSigns) {
  HSField h(10, 10);
  Rng rng(42);
  h.randomize(rng);
  int plus = 0, minus = 0;
  for (idx l = 0; l < 10; ++l)
    for (idx i = 0; i < 10; ++i) (h(l, i) > 0 ? plus : minus)++;
  EXPECT_GT(plus, 10);
  EXPECT_GT(minus, 10);
  EXPECT_EQ(plus + minus, 100);
}

TEST(HSField, RejectsDegenerateDimensions) {
  EXPECT_THROW(HSField(0, 5), InvalidArgument);
  EXPECT_THROW(HSField(5, 0), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
