#include "dqmc/time_displaced.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dqmc/stratification.h"
#include "hubbard/free_fermion.h"
#include "linalg/diag.h"
#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::BMatrixFactory;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::Matrix;

/// Exact U = 0 G(tau,0) = e^{-tau K} (I + e^{-beta K})^{-1}, evaluated
/// stably in the spectral basis.
Matrix exact_free_g_tau0(const Lattice& lat, const ModelParams& p, double tau) {
  const Matrix k = hubbard::kinetic_matrix(lat, p);
  linalg::SymmetricEigen eig = linalg::eig_sym(k);
  const idx n = k.rows();
  linalg::Vector f(n);
  for (idx i = 0; i < n; ++i) {
    const double w = eig.eigenvalues[i];
    // e^{-tau w} / (1 + e^{-beta w}), overflow-safe for both signs of w.
    f[i] = (w >= 0.0) ? std::exp(-tau * w) / (1.0 + std::exp(-p.beta * w))
                      : std::exp((p.beta - tau) * w) /
                            (std::exp(p.beta * w) + 1.0);
  }
  Matrix scaled = eig.eigenvectors;
  linalg::scale_cols(f.data(), scaled);
  return linalg::matmul(scaled, eig.eigenvectors, linalg::Trans::No,
                        linalg::Trans::Yes);
}

/// Exact U = 0 G(0,tau) = -e^{tau K} (I + e^{beta K})^{-1}.
Matrix exact_free_g_0tau(const Lattice& lat, const ModelParams& p, double tau) {
  const Matrix k = hubbard::kinetic_matrix(lat, p);
  linalg::SymmetricEigen eig = linalg::eig_sym(k);
  const idx n = k.rows();
  linalg::Vector f(n);
  for (idx i = 0; i < n; ++i) {
    const double w = eig.eigenvalues[i];
    // -e^{tau w} / (1 + e^{beta w}), overflow-safe.
    f[i] = (w <= 0.0) ? -std::exp(tau * w) / (1.0 + std::exp(p.beta * w))
                      : -std::exp((tau - p.beta) * w) /
                            (std::exp(-p.beta * w) + 1.0);
  }
  Matrix scaled = eig.eigenvectors;
  linalg::scale_cols(f.data(), scaled);
  return linalg::matmul(scaled, eig.eigenvectors, linalg::Trans::No,
                        linalg::Trans::Yes);
}

TEST(TimeDisplaced, FreeFermionsMatchAnalyticAtEverySlice) {
  // U = 0, beta = 8: the full chain condition number is ~1e28, so this
  // exercises the stabilized machinery hard; every slice must match the
  // spectral answer.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 8.0;
  p.slices = 40;
  BMatrixFactory factory(lat, p);
  HSField field(p.slices, 16);

  TimeDisplacedGreens tdg(factory, field, /*cluster_size=*/10);
  TimeDisplaced td = tdg.compute(Spin::Up);
  ASSERT_EQ(td.g_tau0.size(), 41u);
  ASSERT_EQ(td.g_0tau.size(), 41u);

  for (idx l = 0; l <= p.slices; ++l) {
    const double tau = p.dtau() * static_cast<double>(l);
    Matrix exact10 = exact_free_g_tau0(lat, p, tau);
    Matrix exact01 = exact_free_g_0tau(lat, p, tau);
    EXPECT_LE(linalg::relative_difference(td.g_tau0[static_cast<std::size_t>(l)],
                                          exact10),
              1e-9)
        << "G(l,0) at slice " << l;
    EXPECT_LE(linalg::relative_difference(td.g_0tau[static_cast<std::size_t>(l)],
                                          exact01),
              1e-9)
        << "G(0,l) at slice " << l;
  }
}

TEST(TimeDisplaced, InteractingChainMatchesDirectProductAtSmallBeta) {
  // At beta = 1 the chain is mild enough for a long-double direct check.
  Lattice lat(2, 2);
  ModelParams p;
  p.u = 4.0;
  p.beta = 1.0;
  p.slices = 8;
  BMatrixFactory factory(lat, p);
  HSField field(p.slices, 4);
  Rng rng(31415);
  field.randomize(rng);

  TimeDisplacedGreens tdg(factory, field, /*cluster_size=*/4);
  TimeDisplaced td = tdg.compute(Spin::Down);

  // Direct: G(0,0) by inverse; G(l,0) = B_l ... B_1 G(0,0).
  Matrix chain = Matrix::identity(4);
  for (idx l = 0; l < p.slices; ++l)
    chain = testing::reference_matmul(factory.make_b(field.slice(l), Spin::Down),
                                      chain);
  Matrix m = chain;
  linalg::add_identity(m, 1.0);
  Matrix g0 = testing::reference_inverse(m);

  Matrix acc = g0;
  EXPECT_LE(linalg::relative_difference(td.g_tau0[0], g0), 1e-9);
  for (idx l = 1; l <= p.slices; ++l) {
    acc = testing::reference_matmul(factory.make_b(field.slice(l - 1), Spin::Down),
                                    acc);
    EXPECT_LE(linalg::relative_difference(td.g_tau0[static_cast<std::size_t>(l)],
                                          acc),
              1e-8)
        << "slice " << l;
  }

  // G(0,l) = -(I - G(0,0)) * (B_l...B_1)^{-1}.
  Matrix partial = Matrix::identity(4);
  for (idx l = 1; l <= p.slices; ++l) {
    partial = testing::reference_matmul(
        factory.make_b(field.slice(l - 1), Spin::Down), partial);
    Matrix inv_partial = testing::reference_inverse(partial);
    Matrix expected = Matrix::zero(4, 4);
    Matrix img0 = g0;
    for (idx i = 0; i < 4; ++i) img0(i, i) -= 1.0;  // -(I - G) = G - I
    expected = testing::reference_matmul(img0, inv_partial);
    EXPECT_LE(linalg::relative_difference(td.g_0tau[static_cast<std::size_t>(l)],
                                          expected),
              1e-8)
        << "slice " << l;
  }
}

TEST(TimeDisplaced, BoundaryIdentities) {
  // G(0,0) equals the equal-time stratified G; G(L,0) = I - G(0,0)
  // (anti-periodicity); G(0,0)-displaced = -(I - G(0,0)).
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 4.0;
  p.beta = 4.0;
  p.slices = 20;
  BMatrixFactory factory(lat, p);
  HSField field(p.slices, 16);
  Rng rng(999);
  field.randomize(rng);

  TimeDisplacedGreens tdg(factory, field, /*cluster_size=*/5);
  TimeDisplaced td = tdg.compute(Spin::Up);

  // Equal-time reference from the stratification engine.
  StratificationEngine strat(16, StratAlgorithm::kPrePivot);
  std::vector<Matrix> factors;
  for (idx l = 0; l < p.slices; ++l)
    factors.push_back(factory.make_b(field.slice(l), Spin::Up));
  Matrix g0 = strat.compute(factors);

  EXPECT_LE(linalg::relative_difference(td.g_tau0[0], g0), 1e-9);

  Matrix i_minus_g = g0;
  for (idx i = 0; i < 16; ++i) i_minus_g(i, i) -= 1.0;
  for (idx j = 0; j < 16; ++j)
    for (idx i = 0; i < 16; ++i) i_minus_g(i, j) = -i_minus_g(i, j);
  EXPECT_LE(linalg::relative_difference(td.g_tau0[20], i_minus_g), 1e-8);

  Matrix minus_imG = i_minus_g;
  for (idx j = 0; j < 16; ++j)
    for (idx i = 0; i < 16; ++i) minus_imG(i, j) = -minus_imG(i, j);
  EXPECT_LE(linalg::relative_difference(td.g_0tau[0], minus_imG), 1e-8);
}

TEST(TimeDisplaced, LocalGreensDecaysMonotonicallyAtHalfFilling) {
  // Gloc(tau) = (1/N) tr G(tau,0) is positive and decays from G(0,0) toward
  // the anti-periodic boundary value 1 - Gloc(0) at tau = beta.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 4.0;
  p.beta = 4.0;
  p.slices = 40;
  BMatrixFactory factory(lat, p);
  HSField field(p.slices, 16);
  Rng rng(777);
  field.randomize(rng);

  TimeDisplacedGreens tdg(factory, field);
  Vector gloc = tdg.local_greens(Spin::Up);
  ASSERT_EQ(gloc.size(), 41);
  for (idx l = 0; l <= 40; ++l) {
    EXPECT_GT(gloc[l], 0.0) << l;
    EXPECT_LT(gloc[l], 1.0) << l;
  }
  // Endpoint sum rule: Gloc(0) + Gloc(beta) = 1 exactly.
  EXPECT_NEAR(gloc[0] + gloc[40], 1.0, 1e-8);
  // The minimum sits in the middle (dome shape of -G(tau)).
  EXPECT_LT(gloc[20], gloc[0]);
  EXPECT_LT(gloc[20], gloc[40]);
}

TEST(DisplacedFormulas, EmptyPrefixGivesEqualTimeGreens) {
  // (I + C)^{-1} from the PDQ route must equal close_greens from the UDT
  // route on the same chain.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 6.0;
  p.beta = 6.0;
  p.slices = 30;
  BMatrixFactory factory(lat, p);
  HSField field(p.slices, 16);
  Rng rng(555);
  field.randomize(rng);

  // UDT route.
  GradedAccumulator acc(16, StratAlgorithm::kPrePivot);
  std::vector<Matrix> factors;
  for (idx l = 0; l < p.slices; ++l)
    factors.push_back(factory.make_b(field.slice(l), Spin::Up));
  for (const auto& f : factors) acc.push(f);
  Matrix g_udt = close_greens(acc.u(), acc.d(), acc.t());

  // PDQ route via the transposed accumulation.
  GradedAccumulator acc_t(16, StratAlgorithm::kPrePivot);
  for (idx l = p.slices - 1; l >= 0; --l)
    acc_t.push(linalg::transpose(factors[static_cast<std::size_t>(l)]));
  UDT t = acc_t.snapshot();
  PDQ suffix{linalg::transpose(t.t), t.d, t.u};
  Matrix g_pdq = displaced_g_tau0(nullptr, &suffix);

  EXPECT_LE(linalg::relative_difference(g_pdq, g_udt), 1e-9);
}

TEST(DisplacedFormulas, BothPartsNullThrows) {
  EXPECT_THROW(displaced_g_tau0(nullptr, nullptr), InvalidArgument);
  EXPECT_THROW(displaced_g_0tau(nullptr, nullptr), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
