// MomentumTransform: the FFT-planned correlator/projector against the
// naive double loops it replaces, on every lattice family the plans must
// cover (even, odd, rectangular, bilayer/trilayer stacks), plus the
// MeasureKind seam and the cached displacement tables.
#include "dqmc/momentum_transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "dqmc/rng.h"
#include "hubbard/lattice.h"
#include "parallel/topology.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;

struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

std::vector<double> random_field(core::Rng& rng, idx n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() - 0.5;
  return x;
}

// Even, odd, rectangular, and stacked geometries — the plan must handle
// every edge length the Lattice accepts, not just powers of two.
std::vector<Lattice> test_lattices() {
  return {Lattice(4, 4), Lattice(5, 5), Lattice(6, 3), Lattice(3, 7),
          Lattice(4, 4, 2), Lattice(3, 5, 3)};
}

TEST(MeasureKind, NameRoundTrip) {
  EXPECT_STREQ(measure_kind_name(MeasureKind::kDirect), "direct");
  EXPECT_STREQ(measure_kind_name(MeasureKind::kFft), "fft");
  EXPECT_EQ(measure_kind_from_string("direct"), MeasureKind::kDirect);
  EXPECT_EQ(measure_kind_from_string("fft"), MeasureKind::kFft);
  EXPECT_THROW(measure_kind_from_string("fast"), InvalidArgument);
}

TEST(MomentumTransform, PairTableMatchesLattice) {
  for (const Lattice& lat : test_lattices()) {
    const MomentumTransform mt(lat);
    const idx n = lat.num_sites();
    ASSERT_EQ(mt.num_sites(), n);
    ASSERT_EQ(mt.num_displacements(), lat.num_displacements());
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        EXPECT_EQ(mt.pair_index(i, j), lat.displacement_index(j, i));
      }
    }
  }
}

TEST(MomentumTransform, CorrelateMatchesNaiveDoubleLoop) {
  core::Rng rng(101);
  for (const Lattice& lat : test_lattices()) {
    const MomentumTransform mt(lat);
    MomentumTransform::Workspace ws;
    const idx n = lat.num_sites();
    const std::vector<double> a = random_field(rng, n);
    const std::vector<double> b = random_field(rng, n);

    std::vector<double> expected(
        static_cast<std::size_t>(lat.num_displacements()), 0.0);
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        // Site i sits at displacement slot d from j: the naive
        // accumulation every direct-path observable uses.
        expected[static_cast<std::size_t>(lat.displacement_index(j, i))] +=
            a[static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(i)];
      }
    }

    std::vector<double> got(expected.size(), 0.0);
    mt.correlate(a.data(), b.data(), got.data(), ws);
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_NEAR(got[d], expected[d], 1e-11)
          << lat.lx() << "x" << lat.ly() << "x" << lat.layers() << " d=" << d;
    }
  }
}

TEST(MomentumTransform, CorrelateAccumulatesIntoOutput) {
  const Lattice lat(4, 4);
  const MomentumTransform mt(lat);
  MomentumTransform::Workspace ws;
  core::Rng rng(103);
  const std::vector<double> a = random_field(rng, lat.num_sites());
  std::vector<double> once(static_cast<std::size_t>(mt.num_displacements()),
                           0.0);
  mt.correlate(a.data(), a.data(), once.data(), ws);
  std::vector<double> twice(once.size(), 0.0);
  mt.correlate(a.data(), a.data(), twice.data(), ws);
  mt.correlate(a.data(), a.data(), twice.data(), ws);
  for (std::size_t d = 0; d < once.size(); ++d) {
    EXPECT_NEAR(twice[d], 2.0 * once[d], 1e-10);
  }
}

TEST(MomentumTransform, ProjectPlaneMatchesCosineLoop) {
  core::Rng rng(107);
  for (const Lattice& lat : test_lattices()) {
    const MomentumTransform mt(lat);
    MomentumTransform::Workspace ws;
    const idx plane = lat.sites_per_layer();
    ASSERT_EQ(mt.plane_size(), plane);
    const std::vector<double> f = random_field(rng, plane);
    const std::vector<hubbard::Momentum> ks = lat.momenta();

    std::vector<double> got(static_cast<std::size_t>(plane), 0.0);
    mt.project_plane(f.data(), got.data(), ws);

    for (std::size_t k = 0; k < ks.size(); ++k) {
      double acc = 0.0;
      for (idx dy = 0; dy < lat.ly(); ++dy) {
        for (idx dx = 0; dx < lat.lx(); ++dx) {
          const double phase = ks[k].kx * static_cast<double>(dx) +
                               ks[k].ky * static_cast<double>(dy);
          acc += std::cos(phase) *
                 f[static_cast<std::size_t>(dx + lat.lx() * dy)];
        }
      }
      EXPECT_NEAR(got[k], acc, 1e-11)
          << lat.lx() << "x" << lat.ly() << " k=" << k;
    }
  }
}

TEST(MomentumTransform, ProjectPlanesBitwiseAcrossThreadCounts) {
  const Lattice lat(6, 6);
  const MomentumTransform mt(lat);
  const idx plane = mt.plane_size();
  const idx count = 9;
  core::Rng rng(109);
  const std::vector<double> planes = random_field(rng, count * plane);

  std::vector<double> base(static_cast<std::size_t>(count * plane), 0.0);
  {
    ThreadCountGuard guard(1);
    mt.project_planes(planes.data(), count, plane, base.data(), plane);
  }
  for (const int threads : {2, 4, 7}) {
    ThreadCountGuard guard(threads);
    std::vector<double> got(base.size(), 0.0);
    mt.project_planes(planes.data(), count, plane, got.data(), plane);
    ASSERT_EQ(0, std::memcmp(got.data(), base.data(),
                             got.size() * sizeof(double)))
        << "thread count " << threads;
  }

  // And the batched entry agrees with per-plane projection exactly.
  MomentumTransform::Workspace ws;
  for (idx p = 0; p < count; ++p) {
    std::vector<double> single(static_cast<std::size_t>(plane), 0.0);
    mt.project_plane(planes.data() + p * plane, single.data(), ws);
    for (idx k = 0; k < plane; ++k) {
      EXPECT_EQ(single[static_cast<std::size_t>(k)],
                base[static_cast<std::size_t>(p * plane + k)]);
    }
  }
}

TEST(MeasurementWorkspace, PlansMatchLattice) {
  const Lattice lat(4, 6, 2);
  const MeasurementWorkspace ws(lat, MeasureKind::kFft);
  EXPECT_EQ(ws.kind, MeasureKind::kFft);
  EXPECT_EQ(ws.n, lat.num_sites());
  EXPECT_EQ(ws.lx, lat.lx());
  EXPECT_EQ(ws.ly, lat.ly());
  EXPECT_EQ(ws.layers, lat.layers());
  EXPECT_EQ(static_cast<idx>(ws.momenta.size()), lat.sites_per_layer());
  EXPECT_EQ(static_cast<idx>(ws.dwave_nbr.size()), 4 * lat.num_sites());
}

}  // namespace
}  // namespace dqmc::core
