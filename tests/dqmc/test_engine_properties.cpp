// Property sweep: engine invariants across the (U, beta, algorithm,
// cluster size) parameter space. Each point checks the contracts that must
// hold for EVERY valid configuration:
//   * the wrapped/updated G agrees with a from-scratch stratification,
//   * the configuration sign stays +1 at half filling,
//   * acceptance is within (0, 1) for U > 0,
//   * the trajectory is reproducible for a fixed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dqmc/engine.h"
#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;
using linalg::Matrix;

using Point = std::tuple<double, double, StratAlgorithm, idx>;

class EngineProperties : public ::testing::TestWithParam<Point> {};

TEST_P(EngineProperties, InvariantsHoldAfterSweeps) {
  const auto [u, beta, algorithm, cluster] = GetParam();
  Lattice lat(4, 4);
  ModelParams p;
  p.u = u;
  p.beta = beta;
  // Fixed dtau = 0.2: k * dtau (the unstabilized wrap stretch) stays <= 2,
  // inside the paper's stability envelope for every cluster size swept
  // here. (k * dtau = 4 demonstrably drifts at beta = 8 — that regime is
  // what bench/ablation_params documents.)
  p.slices = static_cast<idx>(5.0 * beta + 0.5);
  EngineConfig cfg;
  cfg.algorithm = algorithm;
  cfg.cluster_size = cluster;
  cfg.delay_rank = 8;

  DqmcEngine engine(lat, p, cfg, 424242);
  engine.initialize();
  SweepStats stats{};
  for (int s = 0; s < 2; ++s) stats = engine.sweep();

  // Unstabilized wrap stretch in e-folds of HS conditioning; the method's
  // stability envelope (see below) scopes which assertions are meaningful.
  const double stretch = p.hs_nu() * static_cast<double>(cluster);

  // Sign: half filling on a bipartite lattice. Outside the envelope the
  // drifted ratios can mis-sign individual accepts, so only assert where
  // the Green's function is trustworthy.
  if (stretch <= 13.0) {
    EXPECT_EQ(engine.config_sign(), 1);
  }

  // Acceptance in a sane band for U > 0.
  if (u > 0.0) {
    EXPECT_GT(stats.acceptance(), 0.02) << "u=" << u << " beta=" << beta;
    EXPECT_LT(stats.acceptance(), 0.98);
  } else {
    EXPECT_DOUBLE_EQ(stats.acceptance(), 1.0);
  }

  // Numerical consistency: engine G vs scratch stratification. The wrap
  // drift between recomputes grows like e^{2 nu k} (HS conditioning per
  // unstabilized stretch), so the tolerance follows the stability envelope:
  //   nu*k <= 7   : clean regime, drift ~ rounding amplified mildly
  //   nu*k <= 13  : strong coupling at k = 10 — drift up to ~1e-2 is the
  //                 documented price (reduce k in production there)
  //   beyond      : outside the envelope; require finiteness only.
  Matrix g_engine = engine.greens(hubbard::Spin::Up);
  engine.recompute_greens(0);
  const double drift = linalg::relative_difference(
      g_engine, engine.greens(hubbard::Spin::Up));
  if (stretch <= 7.0) {
    EXPECT_LE(drift, 1e-5) << "u=" << u << " beta=" << beta
                           << " alg=" << strat_algorithm_name(algorithm)
                           << " k=" << cluster;
  } else if (stretch <= 13.0) {
    EXPECT_LE(drift, 1e-2) << "u=" << u << " beta=" << beta
                           << " k=" << cluster;
  } else {
    EXPECT_TRUE(std::isfinite(drift));
  }

  // Determinism.
  DqmcEngine replay(lat, p, cfg, 424242);
  replay.initialize();
  SweepStats rstats{};
  for (int s = 0; s < 2; ++s) rstats = replay.sweep();
  EXPECT_EQ(stats.accepted, rstats.accepted);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSpace, EngineProperties,
    ::testing::Combine(
        ::testing::Values(0.0, 2.0, 6.0, 10.0),           // U
        ::testing::Values(1.0, 4.0, 8.0),                 // beta
        ::testing::Values(StratAlgorithm::kQRP,
                          StratAlgorithm::kPrePivot),     // algorithm
        ::testing::Values<idx>(2, 5, 10)));               // cluster size

}  // namespace
}  // namespace dqmc::core
