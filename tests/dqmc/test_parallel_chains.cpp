// run_parallel_simulation: independent-chain parallelism + accumulator
// merging.
#include <gtest/gtest.h>

#include <cmath>

#include "dqmc/simulation.h"

namespace dqmc::core {
namespace {

SimulationConfig tiny_config() {
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 10;
  cfg.engine.cluster_size = 5;
  cfg.warmup_sweeps = 20;
  cfg.measurement_sweeps = 60;
  cfg.bins = 6;
  cfg.seed = 11;
  return cfg;
}

TEST(ParallelChains, MergedSampleCountIsSumOfChains) {
  SimulationConfig cfg = tiny_config();
  SimulationResults merged = run_parallel_simulation(cfg, 3, 2);
  EXPECT_EQ(merged.measurements.samples(), 3 * cfg.measurement_sweeps);
  EXPECT_EQ(merged.sweep_stats.proposed,
            3u * static_cast<std::uint64_t>(
                     (cfg.warmup_sweeps + cfg.measurement_sweeps) * 10 * 4));
}

TEST(ParallelChains, MergeEqualsManualCombination) {
  SimulationConfig cfg = tiny_config();
  SimulationResults merged = run_parallel_simulation(cfg, 2, 2);

  // Manual: run the two chains serially and merge by hand.
  SimulationConfig c0 = cfg;
  SimulationConfig c1 = cfg;
  c1.seed = cfg.seed + 1;
  SimulationResults r0 = run_simulation(c0);
  SimulationResults r1 = run_simulation(c1);
  r0.measurements.merge(r1.measurements);

  EXPECT_NEAR(merged.measurements.density().mean,
              r0.measurements.density().mean, 1e-14);
  EXPECT_NEAR(merged.measurements.double_occupancy().mean,
              r0.measurements.double_occupancy().mean, 1e-14);
  EXPECT_NEAR(merged.measurements.af_structure_factor().mean,
              r0.measurements.af_structure_factor().mean, 1e-14);
}

TEST(ParallelChains, WorkerCountDoesNotChangeResults) {
  SimulationConfig cfg = tiny_config();
  cfg.measurement_sweeps = 30;
  SimulationResults a = run_parallel_simulation(cfg, 3, 1);
  SimulationResults b = run_parallel_simulation(cfg, 3, 3);
  EXPECT_DOUBLE_EQ(a.measurements.density().mean,
                   b.measurements.density().mean);
  EXPECT_DOUBLE_EQ(a.measurements.kinetic_energy().mean,
                   b.measurements.kinetic_energy().mean);
}

TEST(ParallelChains, MoreChainsShrinkErrorBars) {
  SimulationConfig cfg = tiny_config();
  SimulationResults one = run_parallel_simulation(cfg, 1, 1);
  SimulationResults eight = run_parallel_simulation(cfg, 8, 2);
  // 8x the samples: error should drop clearly (not exactly sqrt(8) due to
  // binning granularity, but well below the single-chain error).
  EXPECT_LT(eight.measurements.double_occupancy().error,
            one.measurements.double_occupancy().error);
}

TEST(ParallelChains, RejectsZeroChains) {
  EXPECT_THROW(run_parallel_simulation(tiny_config(), 0), InvalidArgument);
}

TEST(StatsMerge, ShapeMismatchThrows) {
  ScalarAccumulator a(4), b(8);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  ArrayAccumulator x(3, 4), y(4, 4);
  EXPECT_THROW(x.merge(y), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
