#include "dqmc/measurements.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hubbard/free_fermion.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::free_greens_function;
using hubbard::Lattice;
using hubbard::ModelParams;

TEST(Measurements, FreeFermionDensityAndMomentum) {
  // With G = exact U=0 Green's function, the measured density and <n_k>
  // must equal the closed forms.
  Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 3.0;
  p.mu = -0.3;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);

  EXPECT_NEAR(s.density, hubbard::free_density(lat, p), 1e-10);
  EXPECT_NEAR(s.density_up, s.density_dn, 1e-14);

  const auto ks = lat.momenta();
  for (std::size_t k = 0; k < ks.size(); ++k) {
    EXPECT_NEAR(s.momentum_dist[static_cast<idx>(k)],
                hubbard::free_momentum_occupation(p, ks[k]), 1e-10)
        << "k index " << k;
  }
}

TEST(Measurements, FreeFermionKineticEnergy) {
  Lattice lat(6, 6);
  ModelParams p;
  p.u = 0.0;
  p.beta = 4.0;
  p.mu = 0.0;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  // At mu = 0 the closed-form band energy IS the hopping energy.
  EXPECT_NEAR(s.kinetic_energy, hubbard::free_energy_per_site(lat, p), 1e-10);
}

TEST(Measurements, UncorrelatedGreensGiveFactorizedDoubleOccupancy) {
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 2.0;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  // <n_up n_dn> = <n_up><n_dn> per site for identical diagonal G's.
  double expect = 0.0;
  for (idx i = 0; i < 16; ++i)
    expect += (1.0 - g(i, i)) * (1.0 - g(i, i));
  EXPECT_NEAR(s.double_occupancy, expect / 16.0, 1e-12);
}

TEST(Measurements, MomentSquaredIdentity) {
  // <m_z^2> = <n_up> + <n_dn> - 2 <n_up n_dn> for the same-site correlator.
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 2.0;
  p.mu = 0.2;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  EXPECT_NEAR(s.moment_sq, s.density - 2.0 * s.double_occupancy, 1e-10);
}

TEST(Measurements, SpinCorrSumRuleAtZeroDistance) {
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 3.0;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  EXPECT_NEAR(s.spin_corr[lat.displacement_index(0, 0)], s.moment_sq, 1e-12);
}

TEST(Measurements, IdentityMinusHalfGivesHalfFilledUncorrelatedLimit) {
  // G = I/2 (infinite temperature): density 1, double occupancy 1/4,
  // kinetic 0, n_k = 1/2, Czz(d != 0) = 0, Czz(0) = 1/2.
  Lattice lat(4, 4);
  ModelParams p;
  Matrix g = Matrix::identity(16);
  for (idx i = 0; i < 16; ++i) g(i, i) = 0.5;
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  EXPECT_NEAR(s.density, 1.0, 1e-14);
  EXPECT_NEAR(s.double_occupancy, 0.25, 1e-14);
  EXPECT_NEAR(s.kinetic_energy, 0.0, 1e-14);
  EXPECT_NEAR(s.moment_sq, 0.5, 1e-14);
  for (idx k = 0; k < 16; ++k)
    EXPECT_NEAR(s.momentum_dist[k], 0.5, 1e-13);
  for (idx d = 1; d < lat.num_displacements(); ++d)
    EXPECT_NEAR(s.spin_corr[d], 0.0, 1e-13) << d;
  // S_af = Czz(0) here.
  EXPECT_NEAR(s.af_structure_factor, 0.5, 1e-12);
}

TEST(Measurements, PairFieldsAtInfiniteTemperature) {
  // G = I/2: P_s = 1/4 and P_d = 1/4 (only i=j, delta=delta' terms
  // survive; 4 bonds x (1/2)^2 x the 1/4 normalization).
  Lattice lat(4, 4);
  ModelParams p;
  Matrix g = Matrix::identity(16);
  for (idx i = 0; i < 16; ++i) g(i, i) = 0.5;
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  EXPECT_NEAR(s.pair_s, 0.25, 1e-13);
  EXPECT_NEAR(s.pair_d, 0.25, 1e-13);
}

TEST(Measurements, PairFieldsFreeFermionsPositive) {
  Lattice lat(6, 6);
  ModelParams p;
  p.beta = 4.0;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  // s-wave structure factor is a sum of squares here (G_up == G_dn).
  EXPECT_GT(s.pair_s, 0.0);
  // Free-fermion d-wave: finite and comparable in magnitude.
  EXPECT_GT(std::fabs(s.pair_d), 1e-4);
}

TEST(Measurements, SWavePairMatchesHandSum) {
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 2.0;
  p.mu = 0.3;
  Matrix g = free_greens_function(lat, p);
  EqualTimeSample s = measure_equal_time(lat, p, g, g);
  double expect = 0.0;
  for (idx j = 0; j < 16; ++j)
    for (idx i = 0; i < 16; ++i) expect += g(i, j) * g(i, j);
  EXPECT_NEAR(s.pair_s, expect / 16.0, 1e-12);
}

TEST(MeasurementAccumulator, AveragesSamplesWithSign) {
  Lattice lat(2, 2);
  MeasurementAccumulator acc(lat, 4);
  EqualTimeSample s;
  s.momentum_dist = linalg::Vector::zero(4);
  s.spin_corr = linalg::Vector::zero(lat.num_displacements());
  s.density = 2.0;
  acc.add(s, 1);
  s.density = 4.0;
  acc.add(s, 1);
  EXPECT_EQ(acc.samples(), 2);
  EXPECT_NEAR(acc.density().mean, 3.0, 1e-14);
  EXPECT_NEAR(acc.average_sign().mean, 1.0, 1e-14);
}

TEST(MeasurementAccumulator, NegativeSignsReweight) {
  Lattice lat(2, 2);
  MeasurementAccumulator acc(lat, 2);
  EqualTimeSample s;
  s.momentum_dist = linalg::Vector::zero(4);
  s.spin_corr = linalg::Vector::zero(lat.num_displacements());
  // <O s> / <s> with samples (O=1,s=+), (O=3,s=-):
  // (1 - 3) / (1 - 1) undefined => use 3 samples for a finite sign.
  s.density = 1.0;
  acc.add(s, 1);
  acc.add(s, 1);
  s.density = 3.0;
  acc.add(s, -1);
  EXPECT_NEAR(acc.density().mean, (1.0 + 1.0 - 3.0) / (1.0), 1e-14);
  EXPECT_NEAR(acc.average_sign().mean, 1.0 / 3.0, 1e-14);
}

}  // namespace
}  // namespace dqmc::core
