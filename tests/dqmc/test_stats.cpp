#include "dqmc/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dqmc/rng.h"

namespace dqmc::core {
namespace {

TEST(ScalarAccumulator, MeanOfConstantStream) {
  ScalarAccumulator acc(8);
  for (int i = 0; i < 100; ++i) acc.add(2.5, 1.0);
  Estimate e = acc.estimate();
  EXPECT_NEAR(e.mean, 2.5, 1e-14);
  EXPECT_NEAR(e.error, 0.0, 1e-14);
}

TEST(ScalarAccumulator, ErrorShrinksWithSamples) {
  Rng rng(17);
  ScalarAccumulator small(16), large(16);
  for (int i = 0; i < 64; ++i) small.add(rng.uniform(), 1.0);
  for (int i = 0; i < 6400; ++i) large.add(rng.uniform(), 1.0);
  EXPECT_GT(small.estimate().error, large.estimate().error);
  // Uniform [0,1): mean 1/2, sd ~0.289; 6400 samples => error ~0.0036.
  EXPECT_NEAR(large.estimate().mean, 0.5, 0.02);
  EXPECT_LT(large.estimate().error, 0.02);
  EXPECT_GT(large.estimate().error, 0.0);
}

TEST(ScalarAccumulator, SignWeightingComputesRatio) {
  ScalarAccumulator acc(4);
  acc.add(1.0, 1.0);
  acc.add(2.0, 1.0);
  acc.add(10.0, -1.0);
  // <O s>/<s> = (1 + 2 - 10) / (1 + 1 - 1) = -7.
  EXPECT_NEAR(acc.estimate().mean, -7.0, 1e-13);
  EXPECT_NEAR(acc.sign_estimate().mean, 1.0 / 3.0, 1e-13);
}

TEST(ScalarAccumulator, EmptyReportsZero) {
  ScalarAccumulator acc;
  EXPECT_EQ(acc.samples(), 0);
  EXPECT_DOUBLE_EQ(acc.estimate().mean, 0.0);
  EXPECT_DOUBLE_EQ(acc.estimate().error, 0.0);
}

TEST(ScalarAccumulator, GaussianErrorBarIsCalibrated) {
  // The 1-sigma error bar should cover the true mean about 2/3 of the time;
  // check a weaker statement: the measured error matches sd/sqrt(n) within
  // a factor of 2 for a large Gaussian-ish sample.
  Rng rng(23);
  ScalarAccumulator acc(32);
  const int n = 32000;
  for (int i = 0; i < n; ++i) {
    // Sum of 4 uniforms: variance 4/12 = 1/3.
    double v = rng.uniform() + rng.uniform() + rng.uniform() + rng.uniform();
    acc.add(v, 1.0);
  }
  const double expected_error = std::sqrt(1.0 / 3.0 / n);
  EXPECT_GT(acc.estimate().error, expected_error / 2.0);
  EXPECT_LT(acc.estimate().error, expected_error * 2.0);
}

TEST(Jackknife, HandComputedSignedReplicates) {
  // 4 bins, one sample each: (1,+), (2,+), (3,+), (10,-).
  //   full = (1+2+3-10)/(1+1+1-1) = -2
  //   leave-one-out replicates: -5, -6, -7, 2  (bar = -4)
  //   bias-corrected mean: 4*(-2) - 3*(-4) = 4
  //   error: sqrt(3/4 * [1+4+9+36]) = sqrt(37.5)
  ScalarAccumulator acc(4);
  acc.add(1.0, 1.0);
  acc.add(2.0, 1.0);
  acc.add(3.0, 1.0);
  acc.add(10.0, -1.0);
  const Estimate jk = acc.jackknife();
  EXPECT_NEAR(jk.mean, 4.0, 1e-12);
  EXPECT_NEAR(jk.error, std::sqrt(37.5), 1e-12);
}

TEST(Jackknife, ReducesToBinnedErrorWithoutSignProblem) {
  // With sign == 1 and equal bin counts the ratio estimator is linear in
  // the bin means, so the delete-one jackknife reproduces the plain binned
  // standard error exactly and the bias correction vanishes.
  Rng rng(29);
  ScalarAccumulator acc(16);
  for (int i = 0; i < 64 * 16; ++i) acc.add(rng.uniform(), 1.0);
  const Estimate plain = acc.estimate();
  const Estimate jk = acc.jackknife();
  EXPECT_NEAR(jk.mean, plain.mean, 1e-12);
  EXPECT_NEAR(jk.error, plain.error, 1e-12);
}

TEST(Jackknife, SignCovarianceWidensTheRatioErrorBar) {
  // A correlated (O, s) stream where naive per-bin ratios understate the
  // uncertainty of <Os>/<s>: the jackknife bar must not collapse to zero
  // and must stay finite with a fluctuating sign.
  Rng rng(31);
  ScalarAccumulator acc(8);
  for (int i = 0; i < 400; ++i) {
    const double s = rng.uniform() < 0.7 ? 1.0 : -1.0;
    acc.add(0.5 + 0.1 * rng.uniform() + 0.3 * s, s);
  }
  const Estimate jk = acc.jackknife();
  EXPECT_GT(jk.error, 0.0);
  EXPECT_LT(jk.error, 1.0);
  EXPECT_TRUE(std::isfinite(jk.mean));
}

TEST(Jackknife, FallsBackWithTooFewBins) {
  ScalarAccumulator one(1);
  one.add(2.0, 1.0);
  one.add(4.0, 1.0);
  const Estimate jk = one.jackknife();
  EXPECT_NEAR(jk.mean, 3.0, 1e-14);
  EXPECT_DOUBLE_EQ(jk.error, one.estimate().error);

  ScalarAccumulator empty(4);
  EXPECT_DOUBLE_EQ(empty.jackknife().mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.jackknife().error, 0.0);
}

TEST(ArrayAccumulator, PerComponentMeans) {
  ArrayAccumulator acc(3, 4);
  const double a[3] = {1.0, 2.0, 3.0};
  const double b[3] = {3.0, 2.0, 1.0};
  for (int i = 0; i < 10; ++i) {
    acc.add(a, 1.0);
    acc.add(b, 1.0);
  }
  EXPECT_NEAR(acc.estimate(0).mean, 2.0, 1e-14);
  EXPECT_NEAR(acc.estimate(1).mean, 2.0, 1e-14);
  EXPECT_NEAR(acc.estimate(2).mean, 2.0, 1e-14);
  linalg::Vector means = acc.means();
  EXPECT_EQ(means.size(), 3);
  EXPECT_NEAR(means[1], 2.0, 1e-14);
}

TEST(ArrayAccumulator, OutOfRangeComponentThrows) {
  ArrayAccumulator acc(2, 2);
  EXPECT_THROW(acc.estimate(2), InvalidArgument);
  EXPECT_THROW(acc.estimate(-1), InvalidArgument);
}

TEST(Accumulators, RejectNonPositiveBins) {
  EXPECT_THROW(ScalarAccumulator(0), InvalidArgument);
  EXPECT_THROW(ArrayAccumulator(3, 0), InvalidArgument);
  EXPECT_THROW(ArrayAccumulator(0, 3), InvalidArgument);
}


TEST(Autocorrelation, IidStreamHasTauHalf) {
  Rng rng(71);
  AutocorrelationEstimator est;
  for (int i = 0; i < 8000; ++i) est.add(rng.uniform());
  EXPECT_NEAR(est.tau_integrated(), 0.5, 0.15);
}

TEST(Autocorrelation, Ar1StreamMatchesClosedForm) {
  // AR(1): x_{t+1} = a x_t + noise; tau_int = (1 + a) / (2 (1 - a)).
  Rng rng(73);
  AutocorrelationEstimator est;
  const double a = 0.7;
  double x = 0.0;
  for (int i = 0; i < 40000; ++i) {
    x = a * x + (rng.uniform() - 0.5);
    est.add(x);
  }
  const double expected = 0.5 * (1.0 + a) / (1.0 - a);  // ~2.83
  EXPECT_NEAR(est.tau_integrated(), expected, 0.8);
}

TEST(Autocorrelation, RhoBasics) {
  AutocorrelationEstimator est;
  for (int i = 0; i < 32; ++i) est.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(est.rho(0), 1.0, 1e-12);
  EXPECT_LT(est.rho(1), -0.8);  // perfectly anti-correlated
  EXPECT_THROW(est.rho(32), InvalidArgument);
}

TEST(Autocorrelation, TinyOrConstantStreamsAreSafe) {
  AutocorrelationEstimator est;
  est.add(1.0);
  est.add(1.0);
  EXPECT_DOUBLE_EQ(est.tau_integrated(), 0.5);
  AutocorrelationEstimator flat;
  for (int i = 0; i < 100; ++i) flat.add(3.0);
  EXPECT_GE(flat.tau_integrated(), 0.5);
}

}  // namespace
}  // namespace dqmc::core
