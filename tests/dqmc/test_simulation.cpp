// Integration tests: complete DQMC simulations validated against exact
// results (free fermions at U = 0; many-body exact diagonalization at
// U > 0 on a 2x2 cluster).
#include "dqmc/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hubbard/free_fermion.h"
#include "testing/exact_diag.h"

namespace dqmc::core {
namespace {

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 20;
  cfg.engine.cluster_size = 5;
  cfg.engine.delay_rank = 4;
  cfg.warmup_sweeps = 200;
  cfg.measurement_sweeps = 800;
  cfg.bins = 16;
  cfg.seed = 20260707;
  return cfg;
}

TEST(Simulation, FreeFermionsReproduceExactDensityAndMomentum) {
  SimulationConfig cfg = base_config();
  cfg.lx = cfg.ly = 4;
  cfg.model.u = 0.0;
  cfg.warmup_sweeps = 5;
  cfg.measurement_sweeps = 10;  // U = 0 has zero variance: few sweeps suffice
  SimulationResults res = run_simulation(cfg);

  const Lattice lat = cfg.make_lattice();
  EXPECT_NEAR(res.measurements.density().mean,
              hubbard::free_density(lat, cfg.model), 1e-8);
  const auto ks = lat.momenta();
  for (std::size_t k = 0; k < ks.size(); ++k) {
    EXPECT_NEAR(res.measurements.momentum_dist(static_cast<idx>(k)).mean,
                hubbard::free_momentum_occupation(cfg.model, ks[k]), 1e-8);
  }
  EXPECT_NEAR(res.measurements.average_sign().mean, 1.0, 1e-12);
}

TEST(Simulation, MatchesExactDiagonalizationOn2x2) {
  // The headline correctness test: full DQMC vs brute-force many-body ED.
  SimulationConfig cfg = base_config();
  SimulationResults res = run_simulation(cfg);

  const Lattice lat = cfg.make_lattice();
  testing::ExactThermal exact = testing::exact_thermal(lat, cfg.model);

  const auto density = res.measurements.density();
  const auto docc = res.measurements.double_occupancy();
  const auto kinetic = res.measurements.kinetic_energy();
  const auto moment = res.measurements.moment_sq();

  // Half filling must be exact by particle-hole symmetry.
  EXPECT_NEAR(exact.density, 1.0, 1e-12);
  EXPECT_NEAR(density.mean, 1.0, 5.0 * std::max(density.error, 2e-3));

  // Statistical agreement within 5 sigma (plus a floor for the Trotter
  // error, O(dtau^2) ~ 1e-2 at dtau = 0.1).
  const double trotter = 5e-3;
  EXPECT_NEAR(docc.mean, exact.double_occupancy,
              5.0 * docc.error + trotter)
      << "DQMC " << docc.mean << " +- " << docc.error << " vs ED "
      << exact.double_occupancy;
  EXPECT_NEAR(kinetic.mean, exact.kinetic_energy,
              5.0 * kinetic.error + 4.0 * trotter)
      << "DQMC " << kinetic.mean << " +- " << kinetic.error << " vs ED "
      << exact.kinetic_energy;
  EXPECT_NEAR(moment.mean, exact.moment_sq, 5.0 * moment.error + trotter);

  // Spin correlations, all displacements.
  for (idx d = 0; d < lat.num_displacements(); ++d) {
    const auto czz = res.measurements.spin_corr(d);
    EXPECT_NEAR(czz.mean, exact.spin_corr[d], 5.0 * czz.error + 2.0 * trotter)
        << "displacement " << d;
  }
}

TEST(Simulation, TrotterErrorShrinksWithSliceCount) {
  // Halving dtau should move double occupancy toward the ED value.
  SimulationConfig coarse = base_config();
  coarse.model.slices = 8;  // dtau = 0.25
  coarse.warmup_sweeps = 150;
  coarse.measurement_sweeps = 600;
  SimulationConfig fine = base_config();
  fine.model.slices = 40;  // dtau = 0.05
  fine.warmup_sweeps = 150;
  fine.measurement_sweeps = 600;

  testing::ExactThermal exact =
      testing::exact_thermal(coarse.make_lattice(), coarse.model);
  SimulationResults rc = run_simulation(coarse);
  SimulationResults rf = run_simulation(fine);

  const double err_coarse =
      std::fabs(rc.measurements.double_occupancy().mean - exact.double_occupancy);
  const double err_fine =
      std::fabs(rf.measurements.double_occupancy().mean - exact.double_occupancy);
  // Allow statistical noise: fine must not be much worse than coarse.
  EXPECT_LT(err_fine, err_coarse + 3.0 * rf.measurements.double_occupancy().error);
}

TEST(Simulation, ProgressCallbackFires) {
  SimulationConfig cfg = base_config();
  cfg.warmup_sweeps = 3;
  cfg.measurement_sweeps = 4;
  idx calls = 0, warmups = 0;
  run_simulation(cfg, [&](idx done, idx total, bool warmup) {
    ++calls;
    if (warmup) ++warmups;
    EXPECT_LE(done, total);
  });
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(warmups, 3);
}

TEST(Simulation, MeasureIntervalThinsSamples) {
  SimulationConfig cfg = base_config();
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 10;
  cfg.measure_interval = 2;
  SimulationResults res = run_simulation(cfg);
  EXPECT_EQ(res.measurements.samples(), 5);
}

TEST(Simulation, DynamicMeasurementsAccumulateWhenEnabled) {
  SimulationConfig cfg = base_config();
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 6;
  cfg.measure_dynamic_interval = 2;
  SimulationResults res = run_simulation(cfg);
  EXPECT_EQ(res.dynamic.samples(), 3);
  // Endpoint sum rule holds on the averaged local propagator.
  const double g0 = res.dynamic.gloc(0).mean;
  const double gb = res.dynamic.gloc(cfg.model.slices).mean;
  EXPECT_NEAR(g0 + gb, 1.0, 1e-6);
  // chi_AF(0) should be positive at half filling.
  EXPECT_GT(res.dynamic.chi_af(0).mean, 0.0);
}

TEST(Simulation, DynamicMeasurementsOffByDefault) {
  SimulationConfig cfg = base_config();
  cfg.warmup_sweeps = 1;
  cfg.measurement_sweeps = 2;
  SimulationResults res = run_simulation(cfg);
  EXPECT_EQ(res.dynamic.samples(), 0);
}

TEST(Simulation, CheckpointThroughConfigResumesTrajectory) {
  const std::string path = ::testing::TempDir() + "/sim_ckpt.txt";

  // Leg 1: run and save.
  SimulationConfig leg1 = base_config();
  leg1.warmup_sweeps = 5;
  leg1.measurement_sweeps = 5;
  leg1.checkpoint_out = path;
  (void)run_simulation(leg1);

  // Leg 2: resume and continue (no warmup needed — state is thermalized
  // to the degree leg 1 reached). Seed is irrelevant after resume.
  SimulationConfig leg2 = base_config();
  leg2.warmup_sweeps = 0;
  leg2.measurement_sweeps = 5;
  leg2.checkpoint_in = path;
  leg2.seed = 987654;
  SimulationResults resumed = run_simulation(leg2);

  // Reference: one uninterrupted run covering both legs.
  SimulationConfig whole = base_config();
  whole.warmup_sweeps = 5;
  whole.measurement_sweeps = 10;
  SimulationResults reference = run_simulation(whole);

  // The resumed leg's samples are the reference's LAST five sweeps; its
  // running density must agree with a direct recomputation — check the
  // trajectory equivalence via the total acceptance count of leg1+leg2
  // equaling the whole run's.
  EXPECT_EQ(resumed.measurements.samples(), 5);
  SimulationConfig leg1b = base_config();
  leg1b.warmup_sweeps = 5;
  leg1b.measurement_sweeps = 5;
  SimulationResults first = run_simulation(leg1b);
  EXPECT_EQ(first.sweep_stats.accepted + resumed.sweep_stats.accepted,
            reference.sweep_stats.accepted);
}

TEST(Simulation, ResultsCarryProfileAndStats) {
  SimulationConfig cfg = base_config();
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 2;
  SimulationResults res = run_simulation(cfg);
  EXPECT_GT(res.elapsed_seconds, 0.0);
  EXPECT_GT(res.profiler.total_seconds(), 0.0);
  EXPECT_EQ(res.sweep_stats.proposed, 4u * 20u * 4u);
  EXPECT_GT(res.strat_stats.evaluations, 0u);
}

}  // namespace
}  // namespace dqmc::core
