#include "dqmc/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hubbard/free_fermion.h"
#include "linalg/lu.h"
#include "linalg/util.h"
#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;
using linalg::Matrix;

ModelParams small_params(double u = 4.0, double beta = 2.0, idx slices = 8) {
  ModelParams p;
  p.u = u;
  p.beta = beta;
  p.slices = slices;
  return p;
}

EngineConfig small_config() {
  EngineConfig c;
  c.cluster_size = 4;
  c.delay_rank = 8;
  return c;
}

/// Brute-force det(M_sigma) for the current field of an engine.
double direct_det(const DqmcEngine& ignored, const hubbard::BMatrixFactory& f,
                  const HSField& field, hubbard::Spin s) {
  (void)ignored;
  const idx n = f.n();
  Matrix prod = Matrix::identity(n);
  for (idx l = 0; l < field.slices(); ++l)
    prod = testing::reference_matmul(f.make_b(field.slice(l), s), prod);
  linalg::add_identity(prod, 1.0);
  linalg::LogDet d = linalg::lu_logdet(linalg::lu_factor(std::move(prod)));
  return static_cast<double>(d.sign) * std::exp(d.log_abs);
}

TEST(Engine, MetropolisRatioMatchesDeterminantRatio) {
  // The rank-1 ratio r = d+ d- must equal det(M'+)det(M'-)/det(M+)det(M-)
  // computed by brute force. Small, warm system so dets are representable.
  Lattice lat(2, 2);
  ModelParams p = small_params(4.0, 1.0, 4);
  DqmcEngine engine(lat, p, small_config(), 99);
  engine.initialize();

  // G at boundary 0; wrap to slice 0 manually via a sweep-free path:
  // use recompute + the engine's own wrap by running ratio checks at the
  // first slice of the first cluster (l = 0) — reproduce internals here.
  const auto& factory = engine.factory();
  HSField& field = engine.field();

  const double det_before = direct_det(engine, factory, field, hubbard::Spin::Up) *
                            direct_det(engine, factory, field, hubbard::Spin::Down);

  // Green's functions with B_0 leftmost: chain B_0 B_{L-1} ... B_1 —
  // that is the wrap of the boundary-0 G by B_0.
  engine.recompute_greens(0);
  Matrix gup = engine.greens(hubbard::Spin::Up);
  Matrix gdn = engine.greens(hubbard::Spin::Down);
  Matrix work(4, 4);
  factory.wrap(field.slice(0), hubbard::Spin::Up, gup, work);
  factory.wrap(field.slice(0), hubbard::Spin::Down, gdn, work);

  const double nu = factory.nu();
  for (idx i = 0; i < 4; ++i) {
    const double h = static_cast<double>(field(0, i));
    const double aup = std::exp(-2.0 * nu * h) - 1.0;
    const double adn = std::exp(+2.0 * nu * h) - 1.0;
    const double r = (1.0 + aup * (1.0 - gup(i, i))) *
                     (1.0 + adn * (1.0 - gdn(i, i)));

    field.flip(0, i);
    const double det_after =
        direct_det(engine, factory, field, hubbard::Spin::Up) *
        direct_det(engine, factory, field, hubbard::Spin::Down);
    field.flip(0, i);  // restore

    EXPECT_NEAR(r, det_after / det_before, 1e-8 * std::fabs(r)) << "site " << i;
  }
}

TEST(Engine, SweepKeepsGreensConsistentWithScratchRecompute) {
  // After a full sweep (wraps + rank-1 updates + recycled clusters), the
  // engine's G must match a from-scratch stratification of the final field.
  Lattice lat(4, 4);
  ModelParams p = small_params(4.0, 4.0, 16);
  DqmcEngine engine(lat, p, small_config(), 7);
  engine.initialize();
  engine.sweep();

  Matrix g_engine = engine.greens(hubbard::Spin::Up);

  // Scratch: all clusters were rebuilt during the sweep, so a fresh
  // stratification at boundary 0 is the reference.
  engine.recompute_greens(0);
  Matrix g_fresh = engine.greens(hubbard::Spin::Up);
  EXPECT_LE(linalg::relative_difference(g_engine, g_fresh), 1e-7);
}

TEST(Engine, AcceptanceIsReasonable) {
  Lattice lat(4, 4);
  DqmcEngine engine(lat, small_params(), small_config(), 21);
  engine.initialize();
  SweepStats s = engine.sweep();
  EXPECT_EQ(s.proposed, 8u * 16u);
  EXPECT_GT(s.acceptance(), 0.05);
  EXPECT_LT(s.acceptance(), 0.95);
}

TEST(Engine, ZeroInteractionAcceptsEverythingAndKeepsExactGreens) {
  // At U = 0 every ratio is exactly 1 (alpha = 0): all flips accepted, and
  // G never moves away from the free-fermion result.
  Lattice lat(4, 4);
  ModelParams p = small_params(0.0, 3.0, 12);
  DqmcEngine engine(lat, p, small_config(), 5);
  engine.initialize();
  SweepStats s = engine.sweep();
  EXPECT_EQ(s.accepted, s.proposed);

  Matrix g = engine.greens(hubbard::Spin::Up);
  Matrix exact = hubbard::free_greens_function(lat, p);
  EXPECT_LE(linalg::relative_difference(g, exact), 1e-9);
}

TEST(Engine, SignStaysPositiveAtHalfFilling) {
  Lattice lat(4, 4);
  DqmcEngine engine(lat, small_params(6.0, 3.0, 12), small_config(), 13);
  engine.initialize();
  EXPECT_EQ(engine.config_sign(), 1);
  for (int i = 0; i < 3; ++i) {
    engine.sweep();
    EXPECT_EQ(engine.config_sign(), 1) << "sweep " << i;
  }
}

TEST(Engine, DeterministicForFixedSeed) {
  Lattice lat(4, 4);
  DqmcEngine e1(lat, small_params(), small_config(), 42);
  DqmcEngine e2(lat, small_params(), small_config(), 42);
  e1.initialize();
  e2.initialize();
  SweepStats s1 = e1.sweep();
  SweepStats s2 = e2.sweep();
  EXPECT_EQ(s1.accepted, s2.accepted);
  EXPECT_MATRIX_NEAR(e1.greens(hubbard::Spin::Up), e2.greens(hubbard::Spin::Up),
                     0.0);
}

TEST(Engine, QrpAndPrePivotSamplersAgreeStatistically) {
  // Same seed => same random stream. Ratios differ only at rounding level,
  // so the entire Markov chains coincide and final fields match.
  Lattice lat(4, 4);
  EngineConfig cq = small_config();
  cq.algorithm = StratAlgorithm::kQRP;
  EngineConfig cp = small_config();
  cp.algorithm = StratAlgorithm::kPrePivot;
  DqmcEngine e1(lat, small_params(), cq, 77);
  DqmcEngine e2(lat, small_params(), cp, 77);
  e1.initialize();
  e2.initialize();
  for (int i = 0; i < 2; ++i) {
    e1.sweep();
    e2.sweep();
  }
  idx differing = 0;
  for (idx l = 0; l < 8; ++l)
    for (idx i = 0; i < 16; ++i)
      if (e1.field()(l, i) != e2.field()(l, i)) ++differing;
  EXPECT_EQ(differing, 0);
}

TEST(Engine, GpusimBackendReproducesHostTrajectoryBitwise) {
  Lattice lat(4, 4);
  EngineConfig cpu_cfg = small_config();
  EngineConfig gpu_cfg = small_config();
  gpu_cfg.backend = backend::BackendKind::kGpuSim;
  DqmcEngine e1(lat, small_params(), cpu_cfg, 31);
  DqmcEngine e2(lat, small_params(), gpu_cfg, 31);
  e1.initialize();
  e2.initialize();
  SweepStats s1 = e1.sweep();
  SweepStats s2 = e2.sweep();
  EXPECT_EQ(s1.accepted, s2.accepted);
  // Both backends run the same kernels in the same order: bitwise equal.
  EXPECT_EQ(linalg::relative_difference(e1.greens(hubbard::Spin::Up),
                                        e2.greens(hubbard::Spin::Up)),
            0.0);
  // The gpusim backend billed its virtual clock along the way.
  const backend::BackendStats stats = e2.compute_backend().stats();
  EXPECT_GT(stats.kernel_launches, 0u);
  EXPECT_GT(stats.compute_seconds, 0.0);
  EXPECT_GT(stats.bytes_h2d, 0.0);
}

TEST(Engine, ProfilerCoversAllPipelinePhases) {
  Lattice lat(4, 4);
  DqmcEngine engine(lat, small_params(), small_config(), 3);
  engine.initialize();
  engine.sweep();
  const Profiler& prof = engine.profiler();
  EXPECT_GT(prof.seconds(Phase::kStratification), 0.0);
  EXPECT_GT(prof.seconds(Phase::kWrapping), 0.0);
  EXPECT_GT(prof.seconds(Phase::kDelayedUpdate), 0.0);
  EXPECT_GT(prof.seconds(Phase::kClustering), 0.0);
}

TEST(Engine, MultilayerStackSimulatesConsistently) {
  // The paper's motivating geometry: stacked planes with t_perp coupling.
  // The stack is bipartite, so half filling still guarantees sign = +1 and
  // density 1; the wrapped G must stay consistent with scratch recompute.
  Lattice lat(2, 2, 3);  // 12 sites, 3 layers
  ModelParams p = small_params(4.0, 2.0, 8);
  p.t_perp = 0.6;
  DqmcEngine engine(lat, p, small_config(), 71);
  engine.initialize();
  for (int s = 0; s < 2; ++s) engine.sweep();
  EXPECT_EQ(engine.config_sign(), 1);

  Matrix g_engine = engine.greens(hubbard::Spin::Up);
  engine.recompute_greens(0);
  EXPECT_LE(linalg::relative_difference(g_engine,
                                        engine.greens(hubbard::Spin::Up)),
            1e-8);

  // Density per site = 1 on average over both spins for this config-free
  // check: trace identity <n> = 2 - (tr Gup + tr Gdn)/N should be near 1
  // after a couple of sweeps (loose sanity bound).
  const Matrix& gu = engine.greens(hubbard::Spin::Up);
  const Matrix& gd = engine.greens(hubbard::Spin::Down);
  double ntot = 0.0;
  for (idx i = 0; i < 12; ++i) ntot += 2.0 - gu(i, i) - gd(i, i);
  EXPECT_NEAR(ntot / 12.0, 1.0, 0.35);
}

TEST(Engine, NonFiniteFieldInputIsRejectedByStratification) {
  // Failure injection: a NaN planted in a cluster matrix must surface as a
  // NumericalError (singular pivot chain) rather than propagate silently.
  core::StratificationEngine strat(4, StratAlgorithm::kPrePivot);
  std::vector<Matrix> factors;
  Matrix bad = Matrix::identity(4);
  bad(2, 2) = 0.0;  // exactly singular factor
  factors.push_back(bad);
  EXPECT_THROW(strat.compute(factors), NumericalError);
}

TEST(Engine, SweepBeforeInitializeThrows) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, small_params(), small_config(), 1);
  EXPECT_THROW(engine.sweep(), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
