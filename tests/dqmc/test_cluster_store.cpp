#include "dqmc/cluster_store.h"

#include <gtest/gtest.h>

#include "dqmc/rng.h"
#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;
using linalg::Matrix;

struct ClusterFixture : ::testing::Test {
  ClusterFixture()
      : lat(4, 4), factory(lat, params()), field(12, 16) {
    Rng rng(571);
    field.randomize(rng);
  }
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 3.0;
    p.slices = 12;
    return p;
  }
  Lattice lat;
  hubbard::BMatrixFactory factory;
  HSField field;
};

TEST_F(ClusterFixture, GeometryWithEvenDivision) {
  ClusterStore store(factory, field, 4);
  EXPECT_EQ(store.num_clusters(), 3);
  EXPECT_EQ(store.cluster_begin(1), 4);
  EXPECT_EQ(store.cluster_end(1), 8);
  EXPECT_EQ(store.cluster_of(7), 1);
}

TEST_F(ClusterFixture, GeometryWithRaggedTail) {
  ClusterStore store(factory, field, 5);
  EXPECT_EQ(store.num_clusters(), 3);
  EXPECT_EQ(store.cluster_end(2), 12);  // last cluster has 2 slices
  EXPECT_EQ(store.cluster_begin(2), 10);
}

TEST_F(ClusterFixture, ClusterEqualsExplicitBProduct) {
  ClusterStore store(factory, field, 4);
  store.rebuild_all();
  for (idx c = 0; c < 3; ++c) {
    Matrix expected = factory.make_b(field.slice(store.cluster_begin(c)),
                                     hubbard::Spin::Up);
    for (idx l = store.cluster_begin(c) + 1; l < store.cluster_end(c); ++l) {
      expected = testing::reference_matmul(
          factory.make_b(field.slice(l), hubbard::Spin::Up), expected);
    }
    EXPECT_LE(linalg::relative_difference(store.cluster(hubbard::Spin::Up, c),
                                          expected),
              1e-12)
        << "cluster " << c;
  }
}

TEST_F(ClusterFixture, RotationOrdersClustersCyclically) {
  ClusterStore store(factory, field, 4);
  store.rebuild_all();
  auto rot = store.rotation(hubbard::Spin::Down, 1);
  ASSERT_EQ(rot.size(), 3u);
  EXPECT_EQ(rot[0], &store.cluster(hubbard::Spin::Down, 1));
  EXPECT_EQ(rot[1], &store.cluster(hubbard::Spin::Down, 2));
  EXPECT_EQ(rot[2], &store.cluster(hubbard::Spin::Down, 0));
}

TEST_F(ClusterFixture, RebuildPicksUpFieldChanges) {
  ClusterStore store(factory, field, 4);
  store.rebuild_all();
  Matrix before = store.cluster(hubbard::Spin::Up, 0);
  field.flip(1, 7);  // slice 1 lives in cluster 0
  store.rebuild(0);
  Matrix after = store.cluster(hubbard::Spin::Up, 0);
  EXPECT_GT(linalg::relative_difference(after, before), 1e-8);
  // Other clusters untouched by the rebuild of cluster 0.
  field.flip(1, 7);  // restore
}

TEST_F(ClusterFixture, BackendPathsMatchBitwise) {
  ClusterStore plain(factory, field, 4);
  plain.rebuild_all();

  for (backend::BackendKind kind :
       {backend::BackendKind::kHost, backend::BackendKind::kGpuSim}) {
    auto be = backend::make_backend(kind);
    backend::BackendBChain up(*be, factory.b(), factory.b_inv());
    backend::BackendBChain dn(*be, factory.b(), factory.b_inv());
    ClusterStore store(factory, field, 4);
    store.attach_backend(&up, &dn);
    EXPECT_TRUE(store.backend_attached());
    store.rebuild_all();

    for (idx c = 0; c < 3; ++c) {
      for (hubbard::Spin s : hubbard::kSpins) {
        // The backend chain runs the same gemm + row-scaling sequence as
        // the plain path, so the products are bitwise identical.
        EXPECT_EQ(linalg::relative_difference(store.cluster(s, c),
                                              plain.cluster(s, c)),
                  0.0)
            << backend::backend_kind_name(kind) << " cluster " << c;
      }
    }
  }
}

TEST_F(ClusterFixture, AsyncRebuildMatchesBlockingRebuild) {
  auto be = backend::make_backend(backend::BackendKind::kGpuSim);
  backend::BackendBChain up(*be, factory.b(), factory.b_inv());
  backend::BackendBChain dn(*be, factory.b(), factory.b_inv());
  ClusterStore store(factory, field, 4);
  store.attach_backend(&up, &dn);
  store.rebuild_all();

  ClusterStore blocking(factory, field, 4);
  blocking.rebuild_all();

  field.flip(5, 3);  // slice 5 lives in cluster 1
  blocking.rebuild(1);
  store.rebuild_async(1);
  // Readers of the pending cluster materialize the deferred task first.
  for (hubbard::Spin s : hubbard::kSpins) {
    EXPECT_EQ(linalg::relative_difference(store.cluster(s, 1),
                                          blocking.cluster(s, 1)),
              0.0);
  }
  field.flip(5, 3);  // restore

  // Deferred wall time is drained into the profiler on request.
  Profiler prof;
  store.drain_deferred_profile(&prof);
  EXPECT_GT(prof.seconds(Phase::kClustering), 0.0);
}

TEST_F(ClusterFixture, LazyFactorAccessOverlapsPendingRebuild) {
  ClusterStore store(factory, field, 4);
  store.rebuild_all();
  store.rebuild_async(2);
  // factor() must hand out non-pending clusters immediately and block only
  // when the pending one is requested; either way the values match a fresh
  // blocking store.
  ClusterStore fresh(factory, field, 4);
  fresh.rebuild_all();
  for (idx i = 0; i < store.num_clusters(); ++i) {
    const idx c = i % store.num_clusters();
    EXPECT_EQ(linalg::relative_difference(
                  store.factor(hubbard::Spin::Up, 0, i),
                  fresh.cluster(hubbard::Spin::Up, c)),
              0.0);
  }
}

TEST_F(ClusterFixture, ProfilerCreditsClusteringPhase) {
  ClusterStore store(factory, field, 4);
  Profiler prof;
  store.rebuild_all(&prof);
  EXPECT_GT(prof.seconds(Phase::kClustering), 0.0);
  EXPECT_EQ(prof.calls(Phase::kClustering), 3u);
}

TEST_F(ClusterFixture, UnbuiltRotationThrows) {
  ClusterStore store(factory, field, 4);
  EXPECT_THROW(store.rotation(hubbard::Spin::Up, 0), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::core
