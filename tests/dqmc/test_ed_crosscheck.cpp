// Slow physics cross-check (label: slow): a long supervised DQMC run on the
// 2x2 Hubbard cluster against brute-force many-body exact diagonalization,
// with agreement judged by the delete-one-bin JACKKNIFE error bars — the
// correct bars for the sign-weighted ratio estimator <Os>/<s>. One point at
// half filling (sign = 1, jackknife reduces to the binned error) and one
// doped point (mu != 0, fluctuating sign, where the jackknife matters).
#include <gtest/gtest.h>

#include <cmath>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "testing/exact_diag.h"

namespace dqmc::core {
namespace {

SimulationConfig crosscheck_config() {
  SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 40;  // dtau = 0.05: Trotter bias ~ O(dtau^2)
  cfg.engine.cluster_size = 5;
  cfg.engine.delay_rank = 4;
  cfg.warmup_sweeps = 300;
  cfg.measurement_sweeps = 2500;
  cfg.bins = 20;
  cfg.seed = 20260805;
  return cfg;
}

struct Comparison {
  const char* name;
  Estimate dqmc;
  double exact;
  double trotter_floor;
};

void expect_within_jackknife_bars(const Comparison& c) {
  // 4-sigma jackknife agreement plus a floor for the O(dtau^2) Trotter
  // bias the ED oracle does not share. The jackknife bar itself must be a
  // real, finite, nonzero error estimate.
  ASSERT_TRUE(std::isfinite(c.dqmc.mean)) << c.name;
  ASSERT_GT(c.dqmc.error, 0.0) << c.name;
  ASSERT_LT(c.dqmc.error, 0.1) << c.name << ": error bar suspiciously wide";
  EXPECT_NEAR(c.dqmc.mean, c.exact, 4.0 * c.dqmc.error + c.trotter_floor)
      << c.name << ": DQMC " << c.dqmc.mean << " +- " << c.dqmc.error
      << " (jackknife) vs ED " << c.exact;
}

void crosscheck(const SimulationConfig& cfg) {
  const testing::ExactThermal exact =
      testing::exact_thermal(cfg.make_lattice(), cfg.model);

  // Run through the walker supervisor — the long-run production path this
  // PR hardens — not the bare loop.
  SupervisorPolicy policy;
  policy.checkpoint_interval = 100;
  const SimulationResults res = run_supervised_simulation(cfg, policy);
  EXPECT_EQ(res.fault_report.faults, 0u);
  const MeasurementAccumulator& m = res.measurements;

  expect_within_jackknife_bars(
      {"density", m.density_jackknife(), exact.density, 2e-3});
  expect_within_jackknife_bars({"double_occupancy",
                                m.double_occupancy_jackknife(),
                                exact.double_occupancy, 2e-3});
  expect_within_jackknife_bars({"kinetic_energy",
                                m.kinetic_energy_jackknife(),
                                exact.kinetic_energy, 6e-3});
  expect_within_jackknife_bars(
      {"moment_sq", m.moment_sq_jackknife(), exact.moment_sq, 2e-3});
}

TEST(EdCrosscheck, HalfFilledClusterWithinJackknifeBars) {
  const SimulationConfig cfg = crosscheck_config();
  crosscheck(cfg);
}

TEST(EdCrosscheck, DopedClusterWithSignFluctuationsWithinJackknifeBars) {
  SimulationConfig cfg = crosscheck_config();
  cfg.model.mu = -0.5;  // breaks particle-hole symmetry: <s> < 1
  cfg.seed = 20260806;
  crosscheck(cfg);
}

TEST(EdCrosscheck, JackknifeAndBinnedBarsAgreeAtHalfFilling) {
  // With sign identically +1 the ratio estimator is linear in the bin
  // means, so the two error estimates coincide (see test_stats.cpp for the
  // unit-level statement).
  SimulationConfig cfg = crosscheck_config();
  cfg.measurement_sweeps = 400;
  const SimulationResults res = run_simulation(cfg);
  EXPECT_NEAR(res.measurements.average_sign().mean, 1.0, 1e-12);
  const Estimate plain = res.measurements.density();
  const Estimate jk = res.measurements.density_jackknife();
  EXPECT_NEAR(jk.mean, plain.mean, 1e-10);
  EXPECT_NEAR(jk.error, plain.error, 1e-10);
}

}  // namespace
}  // namespace dqmc::core
