#include "dqmc/stratification.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dqmc/hs_field.h"
#include "hubbard/bmatrix.h"
#include "hubbard/free_fermion.h"
#include "linalg/lu.h"
#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::BMatrixFactory;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::MatrixRng;

/// Direct (unstabilized) reference: G = (I + F_{m-1}...F_0)^{-1} in long
/// double via Gauss-Jordan. Only valid when the chain is well conditioned.
Matrix direct_greens(const std::vector<Matrix>& factors) {
  const idx n = factors[0].rows();
  Matrix prod = Matrix::identity(n);
  for (const Matrix& f : factors) prod = testing::reference_matmul(f, prod);
  linalg::add_identity(prod, 1.0);
  return testing::reference_inverse(prod);
}

/// Chain of DQMC B-matrices from a random HS field (the physically relevant
/// ill-conditioned input).
std::vector<Matrix> dqmc_chain(idx lattice_l, idx slices, double u,
                               double beta, std::uint64_t seed) {
  Lattice lat(lattice_l, lattice_l);
  ModelParams p;
  p.u = u;
  p.beta = beta;
  p.slices = slices;
  BMatrixFactory factory(lat, p);
  HSField h(slices, lat.num_sites());
  Rng rng(seed);
  h.randomize(rng);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<std::size_t>(slices));
  for (idx l = 0; l < slices; ++l)
    factors.push_back(factory.make_b(h.slice(l), Spin::Up));
  return factors;
}

class StratBothAlgorithms : public ::testing::TestWithParam<StratAlgorithm> {};

TEST_P(StratBothAlgorithms, SingleFactorMatchesDirectInverse) {
  MatrixRng rng(211);
  Matrix b = rng.uniform_matrix(12, 12);
  linalg::add_identity(b, 3.0);
  std::vector<Matrix> factors;
  factors.push_back(b);
  StratificationEngine engine(12, GetParam());
  Matrix g = engine.compute(factors);
  EXPECT_MATRIX_NEAR(g, direct_greens(factors), 1e-11);
}

TEST_P(StratBothAlgorithms, ShortWellConditionedChainMatchesDirect) {
  MatrixRng rng(223);
  std::vector<Matrix> factors;
  for (int i = 0; i < 4; ++i) {
    Matrix f = rng.uniform_matrix(10, 10);
    linalg::add_identity(f, 4.0);
    factors.push_back(std::move(f));
  }
  StratificationEngine engine(10, GetParam());
  Matrix g = engine.compute(factors);
  EXPECT_MATRIX_NEAR(g, direct_greens(factors), 1e-9);
}

TEST_P(StratBothAlgorithms, ModerateDqmcChainMatchesDirect) {
  // Small beta so the direct inverse is still trustworthy.
  auto factors = dqmc_chain(4, 8, 4.0, 1.0, 997);
  StratificationEngine engine(16, GetParam());
  Matrix g = engine.compute(factors);
  Matrix ref = direct_greens(factors);
  EXPECT_LE(linalg::relative_difference(g, ref), 1e-10);
}

TEST_P(StratBothAlgorithms, IdentityChainGivesHalfIdentity) {
  // All factors identity: G = (I + I)^{-1} = I/2.
  std::vector<Matrix> factors;
  for (int i = 0; i < 5; ++i) factors.push_back(Matrix::identity(8));
  StratificationEngine engine(8, GetParam());
  Matrix g = engine.compute(factors);
  Matrix expected = Matrix::identity(8);
  for (idx i = 0; i < 8; ++i) expected(i, i) = 0.5;
  EXPECT_MATRIX_NEAR(g, expected, 1e-12);
}

TEST_P(StratBothAlgorithms, IllConditionedFreeChainMatchesAnalyticResult) {
  // THE classic stabilization test: at U = 0 the chain is (e^{-dtau K})^L
  // with condition number ~ e^{beta W} (~1e28 here) — a naive product
  // inverse loses everything, but the exact answer is known analytically:
  // G = (I + e^{-beta K})^{-1}. The stratified evaluation must hit it.
  hubbard::Lattice lat(4, 4);
  ModelParams p;
  p.u = 0.0;
  p.beta = 8.0;
  p.slices = 80;
  BMatrixFactory factory(lat, p);
  HSField h(p.slices, 16);  // irrelevant at U = 0

  std::vector<Matrix> factors;
  for (idx l = 0; l < p.slices; ++l)
    factors.push_back(factory.make_b(h.slice(l), Spin::Up));

  StratificationEngine engine(16, GetParam());
  Matrix g = engine.compute(factors);
  Matrix exact = hubbard::free_greens_function(lat, p);
  EXPECT_LE(linalg::relative_difference(g, exact), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, StratBothAlgorithms,
                         ::testing::Values(StratAlgorithm::kQRP,
                                           StratAlgorithm::kPrePivot,
                                           StratAlgorithm::kSvdStack));

TEST(Stratification, AlgorithmsAgreeToPaperAccuracy) {
  // Fig. 2's claim: relative difference between Algorithm 2 and Algorithm 3
  // results stays ~1e-12 even for strongly interacting, cold chains.
  for (double u : {2.0, 4.0, 8.0}) {
    auto factors = dqmc_chain(4, 40, u, 8.0, 1013 + static_cast<std::uint64_t>(u));
    StratificationEngine qrp(16, StratAlgorithm::kQRP);
    StratificationEngine pre(16, StratAlgorithm::kPrePivot);
    Matrix g2 = qrp.compute(factors);
    Matrix g3 = pre.compute(factors);
    EXPECT_LE(linalg::relative_difference(g3, g2), 1e-9) << "U=" << u;
  }
}

TEST(Stratification, PrePivotBarelyPivotsOnGradedChain) {
  auto factors = dqmc_chain(4, 40, 6.0, 8.0, 1019);
  StratificationEngine pre(16, StratAlgorithm::kPrePivot);
  (void)pre.compute(factors);
  const StratStats& s = pre.stats();
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.steps, 40u);
  // After the first couple of steps the chain is graded and the pre-pivot
  // permutation is near-identity: average displacement well below N.
  EXPECT_LT(static_cast<double>(s.pivot_displacement) /
                static_cast<double>(s.steps),
            8.0);
}

TEST(Stratification, ProfilerReceivesStratificationTime) {
  auto factors = dqmc_chain(4, 8, 4.0, 2.0, 1021);
  StratificationEngine engine(16, StratAlgorithm::kPrePivot);
  Profiler prof;
  (void)engine.compute(factors, &prof);
  EXPECT_GT(prof.seconds(Phase::kStratification), 0.0);
  EXPECT_EQ(prof.calls(Phase::kStratification), 1u);
}

TEST(Stratification, RejectsEmptyAndMismatchedFactors) {
  StratificationEngine engine(8, StratAlgorithm::kQRP);
  std::vector<Matrix> empty;
  EXPECT_THROW(engine.compute(empty), InvalidArgument);
  std::vector<Matrix> wrong;
  wrong.push_back(Matrix::identity(4));
  EXPECT_THROW(engine.compute(wrong), InvalidArgument);
}

TEST(Stratification, WrappedChainEqualsRotatedStratification) {
  // G at slice boundary l computed by rotation must equal wrapping the
  // G at boundary l-1... checked at the matrix level: stratify the rotated
  // chain vs conjugate by B_l.
  auto factors = dqmc_chain(4, 12, 4.0, 3.0, 1031);
  StratificationEngine engine(16, StratAlgorithm::kPrePivot);

  // G0: chain F_{11}...F_0; G1: chain rotated by one: F_0 F_{11} ... F_1.
  std::vector<const Matrix*> order0, order1;
  for (const auto& f : factors) order0.push_back(&f);
  for (std::size_t i = 1; i < factors.size(); ++i) order1.push_back(&factors[i]);
  order1.push_back(&factors[0]);

  Matrix g0 = engine.compute(order0);
  Matrix g1 = engine.compute(order1);

  // g1 should equal F_0 g0 F_0^{-1}.
  Matrix f0inv = linalg::inverse(factors[0]);
  Matrix wrapped = testing::reference_matmul(
      testing::reference_matmul(factors[0], g0), f0inv);
  EXPECT_LE(linalg::relative_difference(wrapped, g1), 1e-8);
}

}  // namespace
}  // namespace dqmc::core
