#include "dqmc/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dqmc::core {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(heads / 20000.0, 0.5, 0.02);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // splitmix64 seeding must avoid the all-zero state.
  bool nonzero = false;
  for (int i = 0; i < 10; ++i)
    if (rng.next_u64() != 0) nonzero = true;
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace dqmc::core
