#include "dqmc/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>

#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;

ModelParams params() {
  ModelParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.slices = 8;
  return p;
}

EngineConfig config() {
  EngineConfig c;
  c.cluster_size = 4;
  return c;
}

TEST(Checkpoint, ResumedEngineContinuesBitExactly) {
  Lattice lat(4, 4);
  DqmcEngine original(lat, params(), config(), 101);
  original.initialize();
  original.sweep();
  original.sweep();

  std::stringstream buffer;
  save_checkpoint(buffer, original);

  // Fresh engine with a DIFFERENT seed: everything must come from the
  // checkpoint.
  DqmcEngine restored(lat, params(), config(), 999);
  load_checkpoint(buffer, restored);

  for (int s = 0; s < 2; ++s) {
    SweepStats s1 = original.sweep();
    SweepStats s2 = restored.sweep();
    EXPECT_EQ(s1.accepted, s2.accepted) << "sweep " << s;
  }
  EXPECT_MATRIX_NEAR(original.greens(hubbard::Spin::Up),
                     restored.greens(hubbard::Spin::Up), 0.0);
  for (idx l = 0; l < 8; ++l)
    for (idx i = 0; i < 16; ++i)
      ASSERT_EQ(original.field()(l, i), restored.field()(l, i));
}

TEST(Checkpoint, RoundTripPreservesFieldAndRng) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 7);
  engine.initialize();
  engine.sweep();

  std::stringstream buffer;
  save_checkpoint(buffer, engine);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("dqmcpp-checkpoint v1"), std::string::npos);
  EXPECT_NE(text.find("slices 8"), std::string::npos);
  EXPECT_NE(text.find("sites 4"), std::string::npos);

  DqmcEngine restored(lat, params(), config(), 0);
  std::stringstream replay(text);
  load_checkpoint(replay, restored);
  std::uint64_t s1[4], s2[4];
  engine.rng().state(s1);
  restored.rng().state(s2);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s1[i], s2[i]);
}

TEST(Checkpoint, DimensionMismatchThrows) {
  Lattice small(2, 2);
  DqmcEngine engine(small, params(), config(), 1);
  engine.initialize();
  std::stringstream buffer;
  save_checkpoint(buffer, engine);

  Lattice big(4, 4);
  DqmcEngine other(big, params(), config(), 1);
  EXPECT_THROW(load_checkpoint(buffer, other), InvalidArgument);
}

TEST(Checkpoint, GarbageInputThrows) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 1);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(garbage, engine), InvalidArgument);
}

TEST(Checkpoint, FileRoundTrip) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 55);
  engine.initialize();
  engine.sweep();
  const std::string path = ::testing::TempDir() + "/dqmc_ckpt_test.txt";
  save_checkpoint_file(path, engine);

  DqmcEngine restored(lat, params(), config(), 0);
  load_checkpoint_file(path, restored);
  SweepStats a = engine.sweep();
  SweepStats b = restored.sweep();
  EXPECT_EQ(a.accepted, b.accepted);
}

}  // namespace
}  // namespace dqmc::core
