#include "dqmc/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>

#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;

ModelParams params() {
  ModelParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.slices = 8;
  return p;
}

EngineConfig config() {
  EngineConfig c;
  c.cluster_size = 4;
  return c;
}

TEST(Checkpoint, ResumedEngineContinuesBitExactly) {
  Lattice lat(4, 4);
  DqmcEngine original(lat, params(), config(), 101);
  original.initialize();
  original.sweep();
  original.sweep();

  std::stringstream buffer;
  save_checkpoint(buffer, original);

  // Fresh engine with a DIFFERENT seed: everything must come from the
  // checkpoint.
  DqmcEngine restored(lat, params(), config(), 999);
  load_checkpoint(buffer, restored);

  for (int s = 0; s < 2; ++s) {
    SweepStats s1 = original.sweep();
    SweepStats s2 = restored.sweep();
    EXPECT_EQ(s1.accepted, s2.accepted) << "sweep " << s;
  }
  EXPECT_MATRIX_NEAR(original.greens(hubbard::Spin::Up),
                     restored.greens(hubbard::Spin::Up), 0.0);
  for (idx l = 0; l < 8; ++l)
    for (idx i = 0; i < 16; ++i)
      ASSERT_EQ(original.field()(l, i), restored.field()(l, i));
}

TEST(Checkpoint, RoundTripPreservesFieldAndRng) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 7);
  engine.initialize();
  engine.sweep();

  std::stringstream buffer;
  save_checkpoint(buffer, engine);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("dqmcpp-checkpoint v1"), std::string::npos);
  EXPECT_NE(text.find("slices 8"), std::string::npos);
  EXPECT_NE(text.find("sites 4"), std::string::npos);

  DqmcEngine restored(lat, params(), config(), 0);
  std::stringstream replay(text);
  load_checkpoint(replay, restored);
  std::uint64_t s1[4], s2[4];
  engine.rng().state(s1);
  restored.rng().state(s2);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s1[i], s2[i]);
}

TEST(Checkpoint, DimensionMismatchThrows) {
  Lattice small(2, 2);
  DqmcEngine engine(small, params(), config(), 1);
  engine.initialize();
  std::stringstream buffer;
  save_checkpoint(buffer, engine);

  Lattice big(4, 4);
  DqmcEngine other(big, params(), config(), 1);
  EXPECT_THROW(load_checkpoint(buffer, other), InvalidArgument);
}

TEST(Checkpoint, GarbageInputThrows) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 1);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(garbage, engine), InvalidArgument);
}

/// Thrown from a slice hook to abandon the sweep — simulates a hard kill.
struct Kill {};

// Regression (mid-cluster checkpoint round-trip): a v2 checkpoint taken at
// a NON-cluster-aligned slice must restore the RNG and the wrapped Green's
// functions as saved — not re-derive G from a fresh stratification, which
// is numerically cleaner than the wrapped G the interrupted run was using
// and forks the trajectory from that point on.
TEST(Checkpoint, MidSweepRestoreAtUnalignedSliceIsBitExact) {
  Lattice lat(4, 4);
  const idx kill_sweeps = 2, total_sweeps = 5;
  const idx kill_slice = 5;  // next_slice = 6: mid-cluster for k = 4

  DqmcEngine reference(lat, params(), config(), 211);
  reference.initialize();
  for (idx g = 0; g < total_sweeps; ++g) reference.sweep();

  DqmcEngine victim(lat, params(), config(), 211);
  victim.initialize();
  for (idx g = 0; g < kill_sweeps; ++g) victim.sweep();
  std::stringstream buffer;
  linalg::Matrix saved_gup, saved_gdn;
  try {
    victim.sweep([&](idx slice) {
      if (slice == kill_slice) {
        saved_gup = victim.greens(hubbard::Spin::Up);
        saved_gdn = victim.greens(hubbard::Spin::Down);
        save_checkpoint_mid_sweep(buffer, victim, slice + 1);
        throw Kill{};
      }
    });
    FAIL() << "kill hook never fired";
  } catch (const Kill&) {
  }
  const std::string text = buffer.str();
  EXPECT_NE(text.find("dqmcpp-checkpoint v2"), std::string::npos);
  EXPECT_NE(text.find("position 6"), std::string::npos);

  DqmcEngine restored(lat, params(), config(), 0);
  std::stringstream replay(text);
  load_checkpoint(replay, restored);
  ASSERT_TRUE(restored.pending_resume_slice().has_value());
  EXPECT_EQ(*restored.pending_resume_slice(), kill_slice + 1);
  // The wrapped G travels through the checkpoint, not a re-stratification.
  EXPECT_MATRIX_NEAR(restored.greens(hubbard::Spin::Up), saved_gup, 0.0);
  EXPECT_MATRIX_NEAR(restored.greens(hubbard::Spin::Down), saved_gdn, 0.0);

  // Finishing the interrupted sweep and running the rest lands bit-exactly
  // on the undisturbed trajectory.
  for (idx g = kill_sweeps; g < total_sweeps; ++g) restored.sweep();
  EXPECT_EQ(reference.config_sign(), restored.config_sign());
  EXPECT_MATRIX_NEAR(reference.greens(hubbard::Spin::Up),
                     restored.greens(hubbard::Spin::Up), 0.0);
  EXPECT_MATRIX_NEAR(reference.greens(hubbard::Spin::Down),
                     restored.greens(hubbard::Spin::Down), 0.0);
  for (idx l = 0; l < 8; ++l)
    for (idx i = 0; i < 16; ++i)
      ASSERT_EQ(reference.field()(l, i), restored.field()(l, i));
  EXPECT_EQ(trajectory_hash(reference), trajectory_hash(restored));
}

TEST(Checkpoint, MidSweepRestoreAtClusterBoundaryRejoinsNormalFlow) {
  // next_slice = 4 IS a cluster boundary (k = 4): the resumed sweep
  // re-stratifies there exactly like the original would have, so the
  // aligned case must also be bit-exact.
  Lattice lat(4, 4);
  DqmcEngine reference(lat, params(), config(), 223);
  reference.initialize();
  for (idx g = 0; g < 4; ++g) reference.sweep();

  DqmcEngine victim(lat, params(), config(), 223);
  victim.initialize();
  victim.sweep();
  std::stringstream buffer;
  try {
    victim.sweep([&](idx slice) {
      if (slice == 3) {
        save_checkpoint_mid_sweep(buffer, victim, slice + 1);
        throw Kill{};
      }
    });
    FAIL() << "kill hook never fired";
  } catch (const Kill&) {
  }

  DqmcEngine restored(lat, params(), config(), 0);
  load_checkpoint(buffer, restored);
  for (idx g = 1; g < 4; ++g) restored.sweep();
  EXPECT_EQ(trajectory_hash(reference), trajectory_hash(restored));
}

TEST(Checkpoint, MidSweepFileRoundTrip) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 77);
  engine.initialize();
  engine.sweep();
  const std::string path = ::testing::TempDir() + "/dqmc_ckpt_midsweep.txt";
  try {
    engine.sweep([&](idx slice) {
      if (slice == 1) {
        save_checkpoint_mid_sweep_file(path, engine, slice + 1);
        throw Kill{};
      }
    });
    FAIL() << "kill hook never fired";
  } catch (const Kill&) {
  }

  DqmcEngine restored(lat, params(), config(), 0);
  load_checkpoint_file(path, restored);
  ASSERT_TRUE(restored.pending_resume_slice().has_value());
  EXPECT_EQ(*restored.pending_resume_slice(), idx{2});
}

TEST(Checkpoint, FileRoundTrip) {
  Lattice lat(2, 2);
  DqmcEngine engine(lat, params(), config(), 55);
  engine.initialize();
  engine.sweep();
  const std::string path = ::testing::TempDir() + "/dqmc_ckpt_test.txt";
  save_checkpoint_file(path, engine);

  DqmcEngine restored(lat, params(), config(), 0);
  load_checkpoint_file(path, restored);
  SweepStats a = engine.sweep();
  SweepStats b = restored.sweep();
  EXPECT_EQ(a.accepted, b.accepted);
}

}  // namespace
}  // namespace dqmc::core
