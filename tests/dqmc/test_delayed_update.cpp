#include "dqmc/delayed_update.h"

#include <gtest/gtest.h>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using linalg::MatrixRng;

/// Reference: apply the rank-1 update G <- G - coeff * (G e_i)(e_i^T(I-G))
/// eagerly on a dense matrix.
void eager_update(Matrix& g, double coeff, idx i) {
  const idx n = g.rows();
  linalg::Vector u(n), w(n);
  for (idx r = 0; r < n; ++r) u[r] = g(r, i);
  for (idx j = 0; j < n; ++j) w[j] = ((i == j) ? 1.0 : 0.0) - g(i, j);
  for (idx j = 0; j < n; ++j)
    for (idx r = 0; r < n; ++r) g(r, j) -= coeff * u[r] * w[j];
}

TEST(DelayedGreens, SingleAcceptMatchesEagerUpdate) {
  MatrixRng rng(301);
  Matrix g = rng.uniform_matrix(10, 10);
  Matrix ref = g;
  DelayedGreens d(10, 4);
  d.reset(g);
  d.accept(0.7, 3);
  eager_update(ref, 0.7, 3);
  EXPECT_MATRIX_NEAR(d.flush(), ref, 1e-13);
}

TEST(DelayedGreens, ManyAcceptsAcrossFlushesMatchEager) {
  MatrixRng rng(303);
  Matrix g = rng.uniform_matrix(12, 12);
  Matrix ref = g;
  DelayedGreens d(12, 3);  // forces several auto-flushes
  d.reset(g);
  const idx sites[] = {0, 5, 5, 11, 2, 7, 3, 3, 9};
  double coeff = 0.3;
  for (idx s : sites) {
    d.accept(coeff, s);
    eager_update(ref, coeff, s);
    coeff = -coeff * 0.9;
  }
  EXPECT_MATRIX_NEAR(d.flush(), ref, 1e-11);
}

TEST(DelayedGreens, DiagTracksPendingCorrections) {
  MatrixRng rng(305);
  Matrix g = rng.uniform_matrix(8, 8);
  Matrix ref = g;
  DelayedGreens d(8, 16);
  d.reset(g);
  d.accept(0.5, 2);
  d.accept(-0.25, 6);
  eager_update(ref, 0.5, 2);
  eager_update(ref, -0.25, 6);
  ASSERT_EQ(d.pending(), 2);
  for (idx i = 0; i < 8; ++i) EXPECT_NEAR(d.diag(i), ref(i, i), 1e-13) << i;
}

TEST(DelayedGreens, EntryTracksPendingCorrections) {
  MatrixRng rng(307);
  Matrix g = rng.uniform_matrix(6, 6);
  Matrix ref = g;
  DelayedGreens d(6, 16);
  d.reset(g);
  d.accept(0.4, 1);
  eager_update(ref, 0.4, 1);
  for (idx j = 0; j < 6; ++j)
    for (idx i = 0; i < 6; ++i)
      EXPECT_NEAR(d.entry(i, j), ref(i, j), 1e-13) << i << "," << j;
}

TEST(DelayedGreens, FlushIsIdempotent) {
  MatrixRng rng(309);
  Matrix g = rng.uniform_matrix(5, 5);
  DelayedGreens d(5, 4);
  d.reset(g);
  d.accept(0.1, 0);
  Matrix first = d.flush();
  Matrix second = d.flush();
  EXPECT_MATRIX_NEAR(first, second, 0.0);
  EXPECT_EQ(d.pending(), 0);
}

TEST(DelayedGreens, BaseThrowsWithPendingCorrections) {
  DelayedGreens d(4, 4);
  d.reset(Matrix::identity(4));
  d.accept(0.5, 1);
  EXPECT_THROW(d.base(), InvalidArgument);
  d.flush();
  EXPECT_NO_THROW(d.base());
}

TEST(DelayedGreens, SweepEquivalenceToShermanMorrisonInversion) {
  // Physics-grade check: updating G = M^{-1} through accept() must equal
  // recomputing the inverse of the explicitly updated M.
  MatrixRng rng(311);
  const idx n = 8;
  Matrix m = rng.uniform_matrix(n, n);
  linalg::add_identity(m, 5.0);
  Matrix g = testing::reference_inverse(m);

  DelayedGreens d(n, 4);
  d.reset(g);
  const double alpha = 0.6;
  const idx site = 3;
  // M' = M + alpha e_i e_i^T (M - I)  <=>  A' = (I + alpha e e^T) A.
  const double denom = 1.0 + alpha * (1.0 - g(site, site));
  d.accept(alpha / denom, site);

  Matrix mprime = m;
  for (idx j = 0; j < n; ++j) {
    mprime(site, j) += alpha * (m(site, j) - ((site == j) ? 1.0 : 0.0));
  }
  Matrix gprime = testing::reference_inverse(mprime);
  EXPECT_MATRIX_NEAR(d.flush(), gprime, 1e-11);
}

}  // namespace
}  // namespace dqmc::core
