#include "dqmc/run_manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/health.h"
#include "obs/metrics.h"

namespace dqmc::core {
namespace {

// Global-state guard: these tests enable the process-wide registry/monitor
// and must leave them as they found them for the rest of the binary.
class RunManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics().set_enabled(true);
    obs::metrics().reset();
    obs::health().set_enabled(true);
    obs::health().reset();
  }
  void TearDown() override {
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
};

SimulationConfig tiny_config() {
  SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 10;
  cfg.warmup_sweeps = 1;
  cfg.measurement_sweeps = 2;
  cfg.bins = 2;
  cfg.seed = 99;
  return cfg;
}

TEST_F(RunManifestTest, ContainsTheContractKeys) {
  const SimulationResults res = run_simulation(tiny_config());
  const obs::Json m = run_manifest(res);

  EXPECT_EQ(m.at("manifest").at("program").str(), "dqmcpp");
  EXPECT_DOUBLE_EQ(m.at("manifest").at("seed").number(), 99.0);
  EXPECT_DOUBLE_EQ(m.at("config").at("u").number(), 4.0);
  EXPECT_DOUBLE_EQ(m.at("config").at("slices").number(), 10.0);

  // Every Table-I phase appears with seconds/percent/calls.
  const obs::Json& phases = m.at("phases");
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const obs::Json& row = phases.at(phase_name(static_cast<Phase>(p)));
    EXPECT_TRUE(row.has("seconds"));
    EXPECT_TRUE(row.has("percent"));
    EXPECT_TRUE(row.has("calls"));
  }
  EXPECT_GT(phases.at("total_seconds").number(), 0.0);

  const obs::Json& metrics = m.at("metrics");
  EXPECT_GT(metrics.at("accept_rate").number(), 0.0);
  EXPECT_GT(metrics.at("greens_evaluations").number(), 0.0);
  EXPECT_TRUE(metrics.at("registry").has("counters"));

  const obs::Json& health = m.at("health");
  EXPECT_TRUE(health.at("enabled").boolean());
  // 3 sweeps x num_clusters recomputes, minus the uninitialized first pass.
  EXPECT_GT(health.at("wrap_drift").at("count").number(), 0.0);
  EXPECT_GT(health.at("sortedness").at("count").number(), 0.0);

  // The document survives a dump/parse round trip.
  EXPECT_EQ(obs::Json::parse(m.dump(2)).at("manifest").at("program").str(),
            "dqmcpp");
}

TEST_F(RunManifestTest, WriteProducesAParsableFile) {
  const SimulationResults res = run_simulation(tiny_config());
  const std::string path = testing::TempDir() + "dqmc_test_manifest.json";
  write_run_manifest(res, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  in.close();
  std::remove(path.c_str());

  const obs::Json m = obs::Json::parse(text.str());
  EXPECT_TRUE(m.at("manifest").has("seed"));
  EXPECT_TRUE(m.at("metrics").has("accept_rate"));
}

}  // namespace
}  // namespace dqmc::core
