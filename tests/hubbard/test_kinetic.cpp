#include "hubbard/kinetic.h"

#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "testing/test_utils.h"

namespace dqmc::hubbard {
namespace {

TEST(Kinetic, MatrixIsSymmetricWithCorrectPattern) {
  Lattice lat(4, 4);
  ModelParams p;
  p.t = 1.5;
  p.mu = 0.3;
  Matrix k = kinetic_matrix(lat, p);
  for (idx j = 0; j < k.cols(); ++j)
    for (idx i = 0; i < k.rows(); ++i) EXPECT_EQ(k(i, j), k(j, i));
  // Diagonal carries -mu.
  for (idx i = 0; i < k.rows(); ++i) EXPECT_DOUBLE_EQ(k(i, i), -0.3);
  // Nearest neighbors carry -t.
  const idx s = lat.site(1, 1);
  EXPECT_DOUBLE_EQ(k(s, lat.site(2, 1)), -1.5);
  EXPECT_DOUBLE_EQ(k(s, lat.site(1, 2)), -1.5);
  EXPECT_DOUBLE_EQ(k(s, lat.site(2, 2)), 0.0);  // diagonal neighbor: none
}

TEST(Kinetic, RowSumsMatchCoordination) {
  // With mu = 0 each row sums to -t * (number of neighbors) = -4t in 2D.
  Lattice lat(6, 6);
  ModelParams p;
  p.t = 1.0;
  p.mu = 0.0;
  Matrix k = kinetic_matrix(lat, p);
  for (idx i = 0; i < k.rows(); ++i) {
    double sum = 0.0;
    for (idx j = 0; j < k.cols(); ++j) sum += k(i, j);
    EXPECT_NEAR(sum, -4.0, 1e-14);
  }
}

TEST(Kinetic, MultilayerUsesPerpendicularHopping) {
  Lattice lat(3, 3, 2);
  ModelParams p;
  p.t = 1.0;
  p.t_perp = 0.25;
  Matrix k = kinetic_matrix(lat, p);
  const idx a = lat.site(1, 1, 0), b = lat.site(1, 1, 1);
  EXPECT_DOUBLE_EQ(k(a, b), -0.25);
  EXPECT_DOUBLE_EQ(k(a, lat.site(2, 1, 0)), -1.0);
}

TEST(Kinetic, SpectrumMatchesTightBindingDispersion) {
  // Eigenvalues of K on the periodic square lattice are
  // -2t (cos kx + cos ky) - mu over the momentum grid.
  Lattice lat(4, 4);
  ModelParams p;
  p.t = 1.0;
  p.mu = 0.2;
  Matrix k = kinetic_matrix(lat, p);
  linalg::SymmetricEigen eig = linalg::eig_sym(k);

  std::vector<double> expected;
  for (const Momentum& q : lat.momenta())
    expected.push_back(-2.0 * (std::cos(q.kx) + std::cos(q.ky)) - 0.2);
  std::sort(expected.begin(), expected.end());
  for (idx i = 0; i < k.rows(); ++i)
    EXPECT_NEAR(eig.eigenvalues[i], expected[static_cast<std::size_t>(i)], 1e-12)
        << i;
}

TEST(Kinetic, ExponentialsAreMutualInverses) {
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 4.0;
  p.slices = 20;
  KineticExponentials ke = kinetic_exponentials(lat, p);
  Matrix prod = testing::reference_matmul(ke.b, ke.b_inv);
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(16), 1e-12);
}

TEST(Kinetic, ExponentialPowerEqualsFullBeta) {
  // (e^{-dtau K})^L == e^{-beta K} exactly (same spectral basis).
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 2.0;
  p.slices = 8;
  KineticExponentials ke = kinetic_exponentials(lat, p);
  Matrix power = Matrix::identity(16);
  for (idx l = 0; l < p.slices; ++l) power = testing::reference_matmul(ke.b, power);
  Matrix full = linalg::expm_symmetric(kinetic_matrix(lat, p), -p.beta);
  EXPECT_MATRIX_NEAR(power, full, 1e-11);
}

}  // namespace
}  // namespace dqmc::hubbard
