#include "hubbard/bmatrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/diag.h"
#include "linalg/lu.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::hubbard {
namespace {

std::vector<hs_t> alternating_field(idx n) {
  std::vector<hs_t> h(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) h[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
  return h;
}

class BMatrixTest : public ::testing::Test {
 protected:
  BMatrixTest() : lat_(4, 4), factory_(lat_, params()) {}
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 2.0;
    p.slices = 10;
    return p;
  }
  Lattice lat_;
  BMatrixFactory factory_;
};

TEST_F(BMatrixTest, NuMatchesDefinition) {
  const ModelParams p = params();
  EXPECT_NEAR(std::cosh(factory_.nu()), std::exp(p.u * p.dtau() / 2.0), 1e-14);
}

TEST_F(BMatrixTest, VDiagonalSignsFollowSpinAndField) {
  auto h = alternating_field(16);
  Vector vup = factory_.v_diagonal(h.data(), Spin::Up);
  Vector vdn = factory_.v_diagonal(h.data(), Spin::Down);
  const double nu = factory_.nu();
  EXPECT_NEAR(vup[0], std::exp(nu), 1e-14);   // h=+1, sigma=+
  EXPECT_NEAR(vup[1], std::exp(-nu), 1e-14);  // h=-1
  EXPECT_NEAR(vdn[0], std::exp(-nu), 1e-14);  // opposite spin
  // Up and down diagonals are elementwise inverses (the PHS structure).
  for (idx i = 0; i < 16; ++i) EXPECT_NEAR(vup[i] * vdn[i], 1.0, 1e-14);
}

TEST_F(BMatrixTest, VDiagonalInvIsElementwiseInverse) {
  auto h = alternating_field(16);
  Vector v = factory_.v_diagonal(h.data(), Spin::Up);
  Vector vinv = factory_.v_diagonal_inv(h.data(), Spin::Up);
  for (idx i = 0; i < 16; ++i) EXPECT_NEAR(v[i] * vinv[i], 1.0, 1e-14);
}

TEST_F(BMatrixTest, MakeBEqualsDiagTimesB) {
  auto h = alternating_field(16);
  Matrix bl = factory_.make_b(h.data(), Spin::Down);
  const Vector v = factory_.v_diagonal(h.data(), Spin::Down);
  for (idx j = 0; j < 16; ++j)
    for (idx i = 0; i < 16; ++i)
      EXPECT_NEAR(bl(i, j), v[i] * factory_.b()(i, j), 1e-14);
}

TEST_F(BMatrixTest, ApplyBLeftMatchesExplicitProduct) {
  auto h = alternating_field(16);
  linalg::MatrixRng rng(163);
  Matrix x = rng.uniform_matrix(16, 16);
  Matrix out(16, 16);
  factory_.apply_b_left(h.data(), Spin::Up, x, out);
  Matrix expected =
      testing::reference_matmul(factory_.make_b(h.data(), Spin::Up), x);
  EXPECT_MATRIX_NEAR(out, expected, 1e-12);
}

TEST_F(BMatrixTest, WrapConjugatesByBl) {
  auto h = alternating_field(16);
  linalg::MatrixRng rng(167);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g0 = g;
  Matrix work(16, 16);
  factory_.wrap(h.data(), Spin::Up, g, work);

  Matrix bl = factory_.make_b(h.data(), Spin::Up);
  Matrix bl_inv = linalg::inverse(bl);
  Matrix expected =
      testing::reference_matmul(testing::reference_matmul(bl, g0), bl_inv);
  EXPECT_MATRIX_NEAR(g, expected, 1e-10);
}

TEST_F(BMatrixTest, WrapIsInvertibleNumerically) {
  // Wrapping by B_l then by its inverse conjugation returns the original.
  auto h = alternating_field(16);
  linalg::MatrixRng rng(173);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g0 = g;
  Matrix work(16, 16);
  factory_.wrap(h.data(), Spin::Up, g, work);
  // Inverse conjugation: G = B^{-1} diag(v)^{-1} G diag(v) B done via the
  // same wrap pieces in reverse.
  const Vector vinv = factory_.v_diagonal_inv(h.data(), Spin::Up);
  linalg::scale_rows_cols_inv(vinv.data(), vinv.data(), g);
  Matrix t = testing::reference_matmul(factory_.b_inv(), g);
  g = testing::reference_matmul(t, factory_.b());
  EXPECT_MATRIX_NEAR(g, g0, 1e-10);
}

TEST_F(BMatrixTest, ZeroUGivesUnitV) {
  ModelParams p = params();
  p.u = 0.0;
  BMatrixFactory f0(lat_, p);
  auto h = alternating_field(16);
  Vector v = f0.v_diagonal(h.data(), Spin::Up);
  for (idx i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(v[i], 1.0);
}

}  // namespace
}  // namespace dqmc::hubbard
