#include "hubbard/free_fermion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/expm.h"
#include "linalg/lu.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::hubbard {
namespace {

TEST(FreeFermion, GreensEqualsDirectInverse) {
  Lattice lat(4, 4);
  ModelParams p;
  p.beta = 3.0;
  p.mu = 0.15;
  Matrix g = free_greens_function(lat, p);
  // Direct: (I + e^{-beta K})^{-1}.
  Matrix ebk = linalg::expm_symmetric(kinetic_matrix(lat, p), -p.beta);
  linalg::add_identity(ebk, 1.0);
  Matrix ref = linalg::inverse(std::move(ebk));
  EXPECT_MATRIX_NEAR(g, ref, 1e-11);
}

TEST(FreeFermion, HalfFillingDensityIsOne) {
  Lattice lat(6, 6);
  ModelParams p;
  p.mu = 0.0;
  p.beta = 5.0;
  EXPECT_NEAR(free_density(lat, p), 1.0, 1e-12);
}

TEST(FreeFermion, DensityFromGreensMatchesMomentumSum) {
  Lattice lat(4, 4);
  ModelParams p;
  p.mu = -0.4;
  p.beta = 2.5;
  Matrix g = free_greens_function(lat, p);
  double rho = 0.0;
  for (idx i = 0; i < g.rows(); ++i) rho += 2.0 * (1.0 - g(i, i));
  rho /= static_cast<double>(g.rows());
  EXPECT_NEAR(rho, free_density(lat, p), 1e-12);
}

TEST(FreeFermion, FermiFunctionLimits) {
  EXPECT_NEAR(fermi_function(10.0, -100.0), 1.0, 1e-12);
  EXPECT_NEAR(fermi_function(10.0, +100.0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(fermi_function(10.0, 0.0), 0.5);
  // No overflow at extreme arguments.
  EXPECT_NEAR(fermi_function(1000.0, -1000.0), 1.0, 1e-12);
  EXPECT_NEAR(fermi_function(1000.0, 1000.0), 0.0, 1e-12);
}

TEST(FreeFermion, DispersionAtSymmetryPoints) {
  ModelParams p;
  p.t = 1.0;
  p.mu = 0.0;
  EXPECT_DOUBLE_EQ(free_dispersion(p, {0.0, 0.0}), -4.0);
  EXPECT_NEAR(free_dispersion(p, {std::numbers::pi, std::numbers::pi}), 4.0, 1e-14);
  EXPECT_NEAR(free_dispersion(p, {std::numbers::pi, 0.0}), 0.0, 1e-14);
}

TEST(FreeFermion, MomentumOccupationIsSharpAtLowTemperature) {
  ModelParams p;
  p.beta = 100.0;
  p.mu = 0.0;
  EXPECT_NEAR(free_momentum_occupation(p, {0.0, 0.0}), 1.0, 1e-10);
  EXPECT_NEAR(free_momentum_occupation(p, {std::numbers::pi, std::numbers::pi}),
              0.0, 1e-10);
}

TEST(FreeFermion, EnergyIsNegativeBelowHalfBand) {
  Lattice lat(8, 8);
  ModelParams p;
  p.mu = 0.0;
  p.beta = 8.0;
  // At half filling the band energy is strictly negative.
  EXPECT_LT(free_energy_per_site(lat, p), -0.5);
  EXPECT_GT(free_energy_per_site(lat, p), -4.0);
}

TEST(FreeFermion, MultilayerGreensStillProjector) {
  // G + (I+e^{-beta K})^{-1}-consistency holds on stacked lattices too.
  Lattice lat(3, 3, 2);
  ModelParams p;
  p.beta = 2.0;
  p.t_perp = 0.5;
  Matrix g = free_greens_function(lat, p);
  Matrix ebk = linalg::expm_symmetric(kinetic_matrix(lat, p), -p.beta);
  linalg::add_identity(ebk, 1.0);
  Matrix prod = testing::reference_matmul(g, ebk);
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(18), 1e-11);
}

}  // namespace
}  // namespace dqmc::hubbard
