#include "hubbard/checkerboard.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hubbard/kinetic.h"
#include "linalg/lu.h"
#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::hubbard {
namespace {

using linalg::Matrix;

ModelParams params(double dtau, double mu = 0.0) {
  ModelParams p;
  p.beta = dtau * 10.0;
  p.slices = 10;
  p.mu = mu;
  return p;
}

TEST(Checkerboard, EvenSquareLatticeNeedsFourGroups) {
  Lattice lat(4, 4);
  CheckerboardB cb(lat, params(0.1));
  EXPECT_EQ(cb.num_groups(), 4);
}

TEST(Checkerboard, GroupsPartitionAllBonds) {
  Lattice lat(6, 4, 2);
  CheckerboardB cb(lat, params(0.1));
  // Dense application of the identity touches every bond; compare bond
  // count via the sparsity of log... simpler: groups internally cover all
  // bonds by construction; check the dense matrix mixes every
  // nearest-neighbour pair: B(a,b) != 0 for each bond.
  Matrix b = cb.dense();
  for (const auto& bond : lat.bonds()) {
    EXPECT_NE(b(bond.a, bond.b), 0.0) << bond.a << "-" << bond.b;
  }
}

TEST(Checkerboard, InverseIsExact) {
  // B_cb^{-1} must invert B_cb exactly (each 2x2 factor is inverted
  // exactly), independent of the splitting error.
  Lattice lat(4, 4);
  CheckerboardB cb(lat, params(0.25, 0.3));
  Matrix prod = testing::reference_matmul(cb.dense(), cb.dense_inverse());
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(16), 1e-13);
}

TEST(Checkerboard, DeterminantIsMuScaleOnly) {
  // Each 2x2 hyperbolic rotation has det 1, so det B_cb = e^{N dtau mu}.
  Lattice lat(4, 4);
  const double dtau = 0.1, mu = 0.2;
  CheckerboardB cb(lat, params(dtau, mu));
  linalg::LogDet d = linalg::lu_logdet(linalg::lu_factor(cb.dense()));
  EXPECT_EQ(d.sign, 1);
  EXPECT_NEAR(d.log_abs, 16.0 * dtau * mu, 1e-10);
}

TEST(Checkerboard, ApproximatesDenseExponentialAtSecondOrder) {
  // || B_cb - B_exact || = O(dtau^2): halving dtau shrinks the error ~4x.
  // (On 6x6 — the 4x4 torus is a curiosity where the 4-group splitting is
  // EXACT; see the dedicated test below.)
  Lattice lat(6, 6);
  auto error_at = [&](double dtau) {
    ModelParams p = params(dtau);
    CheckerboardB cb(lat, p);
    KineticExponentials ke = kinetic_exponentials(lat, p);
    return linalg::relative_difference(cb.dense(), ke.b);
  };
  const double e1 = error_at(0.2);
  const double e2 = error_at(0.1);
  EXPECT_LT(e1, 0.05);          // already small
  EXPECT_GT(e1 / e2, 3.0);      // ~4 for a second-order splitting
  EXPECT_LT(e1 / e2, 5.0);
}

TEST(Checkerboard, FourByFourTorusSplittingIsExact) {
  // Empirical curiosity caught during development: on the 4x4 periodic
  // lattice the 4-matching splitting reproduces e^{-dtau K} to rounding at
  // EVERY dtau (the bond-matching algebra closes; each direction's two
  // matchings satisfy A^2 = B^2 = I with L = 4 wraparound). Pinned here so
  // a future grouping change that silently breaks it gets noticed.
  Lattice lat(4, 4);
  for (double dtau : {0.4, 0.1}) {
    ModelParams p = params(dtau);
    CheckerboardB cb(lat, p);
    KineticExponentials ke = kinetic_exponentials(lat, p);
    EXPECT_LE(linalg::relative_difference(cb.dense(), ke.b), 1e-13)
        << "dtau " << dtau;
  }
}

TEST(Checkerboard, ApplyLeftMatchesDenseProduct) {
  Lattice lat(4, 6);
  CheckerboardB cb(lat, params(0.15, -0.1));
  linalg::MatrixRng rng(811);
  Matrix x = rng.uniform_matrix(24, 7);
  Matrix expected = testing::reference_matmul(cb.dense(), x);
  cb.apply_left(x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-12);
}

TEST(Checkerboard, RoundTripOnRandomMatrix) {
  Lattice lat(4, 4, 2);
  CheckerboardB cb(lat, params(0.2, 0.4));
  linalg::MatrixRng rng(813);
  Matrix x = rng.uniform_matrix(32, 5);
  Matrix orig = x;
  cb.apply_left(x);
  cb.apply_inverse_left(x);
  EXPECT_MATRIX_NEAR(x, orig, 1e-12);
}

TEST(Checkerboard, OddLatticeNeedsExtraColorsAndStillPartitions) {
  // A 5x5 periodic lattice has odd cycles: the 4-matching of the even case
  // cannot color it, so the greedy coloring must spend extra groups — but
  // every bond still lands in exactly one group and no group shares a site.
  Lattice lat(5, 5);
  CheckerboardB cb(lat, params(0.1));
  EXPECT_GT(cb.num_groups(), 4);
  EXPECT_EQ(cb.num_bonds(), static_cast<linalg::idx>(lat.bonds().size()));
  cb.op().validate();  // per-group endpoint disjointness
  Matrix b = cb.dense();
  for (const auto& bond : lat.bonds()) {
    EXPECT_NE(b(bond.a, bond.b), 0.0) << bond.a << "-" << bond.b;
  }
}

TEST(Checkerboard, OddLatticeRoundTripsExactly) {
  Lattice lat(5, 5);
  CheckerboardB cb(lat, params(0.2, 0.3));
  linalg::MatrixRng rng(821);
  Matrix x = rng.uniform_matrix(25, 4);
  const Matrix orig = x;
  cb.apply_left(x);
  cb.apply_inverse_left(x);
  EXPECT_MATRIX_NEAR(x, orig, 1e-12);
}

TEST(Checkerboard, BilayerUsesTperpOnInterlayerBonds) {
  // 4x4x2 stack: the vertical bonds carry t_perp, not t. The dense rendering
  // must agree with the exact exponential to splitting order, and the
  // interlayer 2x2 entries must reflect the distinct hopping.
  Lattice lat(4, 4, 2);
  ModelParams p = params(0.05);
  p.t_perp = 0.5;
  CheckerboardB cb(lat, p);
  EXPECT_EQ(cb.n(), 32);
  EXPECT_EQ(cb.num_bonds(), static_cast<linalg::idx>(lat.bonds().size()));
  KineticExponentials ke = kinetic_exponentials(lat, p);
  // dtau = 0.05 keeps the O(dtau^2) splitting error well under 1%.
  EXPECT_LT(linalg::relative_difference(cb.dense(), ke.b), 1e-2);
  // A run with t_perp == t must differ: the interlayer coupling matters.
  ModelParams p_iso = params(0.05);
  CheckerboardB cb_iso(lat, p_iso);
  EXPECT_GT(linalg::relative_difference(cb.dense(), cb_iso.dense()), 1e-4);
}

TEST(Checkerboard, ApplyRightMatchesDenseProduct) {
  // Right applies accept any row count — only the column count is tied to n.
  Lattice lat(4, 6);
  CheckerboardB cb(lat, params(0.15, -0.1));
  linalg::MatrixRng rng(822);
  Matrix x = rng.uniform_matrix(3, 24);
  Matrix expected = testing::reference_matmul(x, cb.dense());
  cb.apply_right(x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-12);
}

TEST(Checkerboard, ApplyInverseRightMatchesDenseInverse) {
  Lattice lat(4, 6);
  CheckerboardB cb(lat, params(0.15, 0.2));
  linalg::MatrixRng rng(823);
  Matrix x = rng.uniform_matrix(5, 24);
  Matrix expected = testing::reference_matmul(x, cb.dense_inverse());
  cb.apply_inverse_right(x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-12);
}

TEST(Checkerboard, RightRoundTripOnRandomMatrix) {
  Lattice lat(4, 4, 2);
  CheckerboardB cb(lat, params(0.2, 0.4));
  linalg::MatrixRng rng(824);
  Matrix x = rng.uniform_matrix(5, 32);
  const Matrix orig = x;
  cb.apply_right(x);
  cb.apply_inverse_right(x);
  EXPECT_MATRIX_NEAR(x, orig, 1e-12);
  cb.apply_inverse_right(x);
  cb.apply_right(x);
  EXPECT_MATRIX_NEAR(x, orig, 1e-12);
}

TEST(Checkerboard, NonSquareLeftOperandMatchesDense) {
  Lattice lat(4, 4);
  CheckerboardB cb(lat, params(0.1, 0.2));
  linalg::MatrixRng rng(825);
  Matrix x = rng.uniform_matrix(16, 3);  // n x 3: column count is free
  Matrix expected = testing::reference_matmul(cb.dense(), x);
  cb.apply_left(x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-12);
}

TEST(Checkerboard, WrongShapeOperandThrows) {
  Lattice lat(4, 4);
  CheckerboardB cb(lat, params(0.1));
  Matrix short_rows = Matrix::zero(8, 16);
  EXPECT_THROW(cb.apply_left(short_rows.view()), InvalidArgument);
  EXPECT_THROW(cb.apply_inverse_left(short_rows.view()), InvalidArgument);
  Matrix short_cols = Matrix::zero(16, 8);
  EXPECT_THROW(cb.apply_right(short_cols.view()), InvalidArgument);
  EXPECT_THROW(cb.apply_inverse_right(short_cols.view()), InvalidArgument);
}

TEST(Checkerboard, HoppingConservesParticleSymmetry) {
  // At mu = 0 the dense checkerboard matrix is symmetric (each 2x2 factor
  // is, and groups of disjoint bonds commute within themselves)... the
  // PRODUCT of group factors is not symmetric in general, but it must be
  // orthogonal-similar to its transpose with det 1 and positive spectrum.
  Lattice lat(4, 4);
  CheckerboardB cb(lat, params(0.1));
  Matrix b = cb.dense();
  linalg::LogDet d = linalg::lu_logdet(linalg::lu_factor(b));
  EXPECT_EQ(d.sign, 1);
  EXPECT_NEAR(d.log_abs, 0.0, 1e-10);
}

}  // namespace
}  // namespace dqmc::hubbard
