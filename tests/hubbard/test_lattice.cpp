#include "hubbard/lattice.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/error.h"

namespace dqmc::hubbard {
namespace {

TEST(Lattice, SiteIndexingRoundTrips) {
  Lattice lat(4, 3, 2);
  EXPECT_EQ(lat.num_sites(), 24);
  for (idx s = 0; s < lat.num_sites(); ++s) {
    const SiteCoord c = lat.coord(s);
    EXPECT_EQ(lat.site(c.x, c.y, c.z), s);
  }
}

TEST(Lattice, BondCountSingleLayer) {
  // Periodic Lx x Ly: 2 * N bonds (each site contributes +x and +y).
  Lattice lat(4, 4);
  EXPECT_EQ(static_cast<idx>(lat.bonds().size()), 2 * lat.num_sites());
}

TEST(Lattice, BondCountMultilayer) {
  // layers stacked with open z: in-plane 2*N total + (layers-1)*Nplane.
  Lattice lat(4, 4, 3);
  const idx plane = 16;
  EXPECT_EQ(static_cast<idx>(lat.bonds().size()), 2 * 3 * plane + 2 * plane);
}

TEST(Lattice, ExtentTwoDoesNotDoubleCountBonds) {
  // On a 2 x 2 periodic lattice +x from x=0 and from x=1 hit the same pair.
  Lattice lat(2, 2);
  std::set<std::pair<idx, idx>> uniq;
  for (const auto& b : lat.bonds()) {
    auto key = std::minmax(b.a, b.b);
    EXPECT_TRUE(uniq.insert(key).second)
        << "duplicate bond " << b.a << "-" << b.b;
  }
  EXPECT_EQ(uniq.size(), 4u);  // 2 x-bonds + 2 y-bonds
}

TEST(Lattice, NeighborWrapsPeriodically) {
  Lattice lat(4, 4);
  const idx s = lat.site(3, 0);
  EXPECT_EQ(lat.neighbor(s, 1, 0), lat.site(0, 0));
  EXPECT_EQ(lat.neighbor(s, -4, 0), s);
  EXPECT_EQ(lat.neighbor(lat.site(0, 0), 0, -1), lat.site(0, 3));
}

TEST(Lattice, InterlayerNeighborIsOpen) {
  Lattice lat(3, 3, 2);
  const idx bottom = lat.site(1, 1, 0);
  EXPECT_EQ(lat.neighbor(bottom, 0, 0, 1), lat.site(1, 1, 1));
  EXPECT_THROW(lat.neighbor(bottom, 0, 0, -1), InvalidArgument);
}

TEST(Lattice, MomentaCoverBrillouinZone) {
  Lattice lat(4, 4);
  auto ks = lat.momenta();
  ASSERT_EQ(ks.size(), 16u);
  EXPECT_DOUBLE_EQ(ks[0].kx, 0.0);
  EXPECT_DOUBLE_EQ(ks[0].ky, 0.0);
  // All momenta distinct mod 2 pi.
  std::set<std::pair<long, long>> uniq;
  for (const auto& k : ks) {
    uniq.insert({std::lround(k.kx * 1e9), std::lround(k.ky * 1e9)});
  }
  EXPECT_EQ(uniq.size(), 16u);
}

TEST(Lattice, DisplacementMinimumImage) {
  Lattice lat(6, 6);
  const idx a = lat.site(0, 0);
  const idx b = lat.site(5, 0);
  const SiteCoord d = lat.displacement(a, b);
  EXPECT_EQ(d.x, -1);  // wrap: 5 == -1 mod 6
  EXPECT_EQ(d.y, 0);
}

TEST(Lattice, DisplacementIndexIsTranslationInvariant) {
  Lattice lat(4, 5);
  const idx d1 = lat.displacement_index(lat.site(0, 0), lat.site(2, 3));
  const idx d2 = lat.displacement_index(lat.site(1, 1), lat.site(3, 4));
  const idx d3 = lat.displacement_index(lat.site(3, 4), lat.site(1, 2));
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);  // (2,3) shift from (3,4) wraps to (1,2)
  EXPECT_GE(d1, 0);
  EXPECT_LT(d1, lat.num_displacements());
}

TEST(Lattice, RejectsDegenerateExtents) {
  EXPECT_THROW(Lattice(1, 4), InvalidArgument);
  EXPECT_THROW(Lattice(4, 4, 0), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::hubbard
