// This binary is built with -DDQMC_NO_FLIGHT_RECORDER: every
// DQMC_FLIGHT_EVENT site must vanish entirely — no probe, no ring write —
// even while the recorder object itself is armed (the runtime API stays
// available for out-of-band consumers). Mirror of
// tests/fault/test_failpoint_compileout.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#ifndef DQMC_NO_FLIGHT_RECORDER
#error "this test must be compiled with DQMC_NO_FLIGHT_RECORDER"
#endif

namespace dqmc::obs {
namespace {

TEST(FlightCompileOut, MacroSitesVanish) {
  FlightRecorder& fr = flight_recorder();
  fr.reset();
  fr.set_enabled(true);
  DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "compiled.out");
  DQMC_FLIGHT_EVENT(FlightEventKind::kFailpoint, "compiled.out", "detail",
                    1.0, 2.0, 3);
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
  fr.set_enabled(false);
}

TEST(FlightCompileOut, MacroIsAStatement) {
  // The stub must stay usable in single-statement positions.
  if (true)
    DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "branch");
  else
    DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "other");
  for (int i = 0; i < 2; ++i) DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "x");
  EXPECT_EQ(flight_recorder().recorded(), 0u);
}

TEST(FlightCompileOut, DirectApiStillWorks) {
  // Only the macro sites compile out; record() remains callable so tooling
  // linked against the library keeps functioning.
  FlightRecorder& fr = flight_recorder();
  fr.reset();
  fr.set_enabled(true);
  fr.record(FlightEventKind::kNote, "direct");
  EXPECT_EQ(fr.recorded(), 1u);
  fr.set_enabled(false);
  fr.reset();
}

}  // namespace
}  // namespace dqmc::obs
