// Flight recorder core semantics: the disarmed no-op contract, the
// per-thread SPSC ring (order, wrap accounting, concurrent writers), the
// ambient walker/crowd context stamping, and the crash-dump document the
// supervisor and crash handlers flush (docs/OBSERVABILITY.md).
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace dqmc::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { scrub(); }
  void TearDown() override { scrub(); }

  // The recorder is a process-global singleton shared with every other
  // suite in this binary: restore a pristine state on both sides.
  static void scrub() {
    FlightRecorder& fr = flight_recorder();
    fr.set_enabled(false);
    fr.set_dump_path("");
    fr.set_export_paths("", "");
    fr.set_context(-1, -1);
    fr.set_sweep(-1);
    fr.set_buffer_capacity(FlightRecorder::kDefaultCapacity);
    fr.reset();
  }
};

TEST_F(FlightRecorderTest, DisabledRecordIsNoOp) {
  FlightRecorder& fr = flight_recorder();
  ASSERT_FALSE(fr.enabled());
  fr.record(FlightEventKind::kNote, "quiet.site");
  DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "quiet.macro");
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST_F(FlightRecorderTest, RecordsEventsInTimeOrder) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  fr.record(FlightEventKind::kSpanBegin, "warmup", "phase", 1.0);
  fr.record(FlightEventKind::kFailpoint, "backend.enqueue", "device", 7.0,
            2.0);
  fr.record(FlightEventKind::kRecovery, "backend.enqueue", "retry");

  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
  EXPECT_EQ(events[0].kind, FlightEventKind::kSpanBegin);
  EXPECT_STREQ(events[1].site, "backend.enqueue");
  EXPECT_STREQ(events[1].detail, "device");
  EXPECT_DOUBLE_EQ(events[1].a, 7.0);
  EXPECT_DOUBLE_EQ(events[1].b, 2.0);
  EXPECT_STREQ(events[2].detail, "retry");
}

TEST_F(FlightRecorderTest, MacroRecordsOnlyWhenArmed) {
  FlightRecorder& fr = flight_recorder();
  DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "off.site");
  EXPECT_EQ(fr.recorded(), 0u);
  fr.set_enabled(true);
  DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "on.site", "armed", 3.0);
  ASSERT_EQ(fr.recorded(), 1u);
  EXPECT_STREQ(fr.snapshot()[0].site, "on.site");
}

TEST_F(FlightRecorderTest, AmbientContextStampsEvents) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  fr.set_context(/*walker=*/5, /*crowd=*/2);
  fr.record(FlightEventKind::kNote, "ambient");
  fr.record(FlightEventKind::kNote, "explicit", "", 0.0, 0.0, /*walker=*/9);
  fr.set_context(-1, -1);
  fr.record(FlightEventKind::kNote, "cleared");

  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].walker, 5);
  EXPECT_EQ(events[0].crowd, 2);
  EXPECT_EQ(events[1].walker, 9);  // explicit id wins over the ambient one
  EXPECT_EQ(events[1].crowd, 2);
  EXPECT_EQ(events[2].walker, -1);
  EXPECT_EQ(events[2].crowd, -1);
}

TEST_F(FlightRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorder& fr = flight_recorder();
  fr.set_buffer_capacity(8);
  fr.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    fr.record(FlightEventKind::kNote, "wrap", "", static_cast<double>(i));
  }
  EXPECT_EQ(fr.recorded(), 20u);
  EXPECT_EQ(fr.dropped(), 12u);
  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The tail is the 8 newest events, oldest-first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].a,
                     static_cast<double>(12 + i));
  }
}

TEST_F(FlightRecorderTest, LongNamesTruncateInsteadOfOverflowing) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  const std::string site(200, 's');
  const std::string detail(200, 'd');
  fr.record(FlightEventKind::kNote, site.c_str(), detail.c_str());
  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].site), std::string(46, 's'));
  EXPECT_EQ(std::string(events[0].detail), std::string(31, 'd'));
}

TEST_F(FlightRecorderTest, CrashDumpJsonCarriesTailContextAndSections) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  fr.set_context(/*walker=*/3, /*crowd=*/1);
  fr.set_sweep(17);
  fr.record(FlightEventKind::kFailpoint, "backend.enqueue.gpusim", "device");
  fr.record(FlightEventKind::kRecovery, "backend.enqueue.gpusim", "retry");
  fr.register_section("custom",
                      [] { return Json::object().set("answer", 42); });

  const Json dump = fr.crash_dump_json("fault:backend.enqueue.gpusim");
  EXPECT_DOUBLE_EQ(dump.at("crash_dump_version").number(), 1.0);
  EXPECT_EQ(dump.at("reason").str(), "fault:backend.enqueue.gpusim");
  EXPECT_DOUBLE_EQ(dump.at("context").at("walker").number(), 3.0);
  EXPECT_DOUBLE_EQ(dump.at("context").at("crowd").number(), 1.0);
  EXPECT_DOUBLE_EQ(dump.at("context").at("sweep").number(), 17.0);
  EXPECT_DOUBLE_EQ(dump.at("recorded").number(), 2.0);
  EXPECT_TRUE(dump.has("metrics"));
  EXPECT_TRUE(dump.has("health"));
  EXPECT_DOUBLE_EQ(dump.at("custom").at("answer").number(), 42.0);

  const Json& events = dump.at("events");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("kind").str(), "failpoint");
  EXPECT_EQ(events[0].at("site").str(), "backend.enqueue.gpusim");
  EXPECT_EQ(events[1].at("kind").str(), "recovery");
  EXPECT_EQ(events[1].at("detail").str(), "retry");
}

TEST_F(FlightRecorderTest, WriteCrashDumpProducesParseableFile) {
  FlightRecorder& fr = flight_recorder();
  EXPECT_FALSE(fr.write_crash_dump("nowhere"));  // no paths configured

  const std::string path = ::testing::TempDir() + "flight_dump_test.json";
  fr.set_dump_path(path);
  fr.set_enabled(true);
  fr.record(FlightEventKind::kNote, "pre-crash");
  ASSERT_TRUE(fr.write_crash_dump("signal:SIGTERM"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const Json dump = Json::parse(text.str());
  EXPECT_EQ(dump.at("reason").str(), "signal:SIGTERM");
  ASSERT_EQ(dump.at("events").size(), 1u);
  EXPECT_EQ(dump.at("events")[0].at("site").str(), "pre-crash");
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ResetDropsEventsAndRestartsClock) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  fr.record(FlightEventKind::kNote, "before");
  ASSERT_EQ(fr.recorded(), 1u);
  fr.reset();
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
  EXPECT_TRUE(fr.enabled());  // reset keeps arming, drops only the events
  fr.record(FlightEventKind::kNote, "after");
  EXPECT_EQ(fr.recorded(), 1u);
}

TEST_F(FlightRecorderTest, ConcurrentWritersAreLocklessAndLossless) {
  FlightRecorder& fr = flight_recorder();
  fr.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;  // < per-thread capacity: nothing may drop
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kEvents; ++i) {
        flight_recorder().record(FlightEventKind::kNote, "mt",
                                 "", static_cast<double>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(kThreads * kEvents));
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_EQ(fr.snapshot().size(),
            static_cast<std::size_t>(kThreads * kEvents));
}

}  // namespace
}  // namespace dqmc::obs
