// The <1% overhead budget of the flight recorder (ISSUE 6 / CMake preset
// `obs`): a disarmed DQMC_FLIGHT_EVENT site is one relaxed atomic load, so a
// million hits must cost far under a second even on a loaded CI machine —
// the same generous absolute bound tests/common/test_trace.cpp uses for
// disabled spans, ~100x above the expected cost, catching any accidental
// lock, allocation, or clock read sneaking onto the disarmed path. The
// armed path must stay a bounded lock-free ring store: no allocation after
// the ring exists, so 1M armed events also finish within the bound.
// bench/obs_overhead.cpp has the precise ns/event numbers.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace dqmc::obs {
namespace {

class FlightOverheadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight_recorder().set_enabled(false);
    flight_recorder().reset();
  }
  void TearDown() override {
    flight_recorder().set_enabled(false);
    flight_recorder().reset();
  }
};

TEST_F(FlightOverheadTest, DisarmedSitesAreCheap) {
  Stopwatch watch;
  for (int i = 0; i < 1'000'000; ++i) {
    DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "noop.site", "detail", 1.0);
  }
  EXPECT_LT(watch.seconds(), 1.0);
  EXPECT_EQ(flight_recorder().recorded(), 0u);
}

TEST_F(FlightOverheadTest, ArmedRecordingIsBounded) {
  flight_recorder().set_enabled(true);
  Stopwatch watch;
  for (int i = 0; i < 1'000'000; ++i) {
    DQMC_FLIGHT_EVENT(FlightEventKind::kNote, "armed.site", "detail",
                      static_cast<double>(i));
  }
  EXPECT_LT(watch.seconds(), 2.0);
  EXPECT_EQ(flight_recorder().recorded(), 1'000'000u);
  // The ring is fixed-size: the tail stays, the rest is accounted dropped.
  EXPECT_EQ(flight_recorder().dropped(),
            1'000'000u - FlightRecorder::kDefaultCapacity);
}

}  // namespace
}  // namespace dqmc::obs
