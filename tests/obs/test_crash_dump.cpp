// Crash-dump forensics end to end: failpoint-killed supervised runs must
// leave a parseable crash_dump.json naming the tripped site, the recovery
// decision the supervisor took, and the active crowd context — the
// acceptance criterion of ISSUE 6. The dump is written from the
// supervisor's fault-classification path (push_event), so no process death
// is needed to exercise it; tests/fault covers the recovery physics, this
// suite covers the artifact.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace dqmc {
namespace {

using linalg::idx;

core::SimulationConfig small_config(backend::BackendKind kind,
                                    idx walker_batch) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 31;
  cfg.walker_batch = walker_batch;
  return cfg;
}

core::SupervisorPolicy test_policy(int max_retries = 2) {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = max_retries;
  return policy;
}

/// First event in the dump's tail matching kind (+ site when non-empty);
/// nullptr when absent.
const obs::Json* find_event(const obs::Json& dump, const std::string& kind,
                            const std::string& site = "") {
  const obs::Json& events = dump.at("events");
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].at("kind").str() != kind) continue;
    if (!site.empty() && events[i].at("site").str() != site) continue;
    return &events[i];
  }
  return nullptr;
}

/// Last recovery decision in the tail — the action the run died/continued
/// with.
std::string last_recovery_action(const obs::Json& dump) {
  const obs::Json& events = dump.at("events");
  std::string action;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].at("kind").str() == "recovery") {
      action = events[i].at("detail").str();
    }
  }
  return action;
}

class CrashDumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Process-unique path: ctest runs each case as its own process, in
    // parallel — a shared filename lets concurrent cases scrub each
    // other's dump mid-test.
    dump_path_ = ::testing::TempDir() + "crash_dump_test_" +
                 std::to_string(::getpid()) + ".json";
    scrub();
    obs::flight_recorder().set_enabled(true);
    obs::flight_recorder().set_dump_path(dump_path_);
  }
  void TearDown() override {
    scrub();
    std::remove(dump_path_.c_str());
  }

  void scrub() {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
    obs::FlightRecorder& fr = obs::flight_recorder();
    fr.set_enabled(false);
    fr.set_dump_path("");
    fr.set_export_paths("", "");
    fr.set_context(-1, -1);
    fr.set_sweep(-1);
    fr.reset();
    std::remove(dump_path_.c_str());
  }

  obs::Json read_dump() const {
    std::ifstream in(dump_path_);
    EXPECT_TRUE(in.good()) << "no crash dump at " << dump_path_;
    std::ostringstream text;
    text << in.rdbuf();
    return obs::Json::parse(text.str());
  }

  std::string dump_path_;
};

TEST_F(CrashDumpTest, HostChainFaultNamesSiteAndRetry) {
  fault::failpoints().arm("backend.enqueue", 50);
  const core::SimulationResults r = core::run_supervised_simulation(
      small_config(backend::BackendKind::kHost, 0), test_policy());
  ASSERT_GE(r.fault_report.faults, 1u);

  const obs::Json dump = read_dump();
  EXPECT_DOUBLE_EQ(dump.at("crash_dump_version").number(), 1.0);
  EXPECT_EQ(dump.at("reason").str(), "fault:backend.enqueue");

  const obs::Json* fp = find_event(dump, "failpoint", "backend.enqueue");
  ASSERT_NE(fp, nullptr) << "tripped site missing from the event tail";
  EXPECT_EQ(fp->at("detail").str(), "device");

  const obs::Json* rec = find_event(dump, "recovery", "backend.enqueue");
  ASSERT_NE(rec, nullptr) << "recovery decision missing from the event tail";
  EXPECT_EQ(rec->at("detail").str(), "retry");

  // The fault registry's section rides along via register_section.
  ASSERT_TRUE(dump.has("failpoints"));
  EXPECT_GE(dump.at("failpoints").at("total_fired").number(), 1.0);
}

TEST_F(CrashDumpTest, GpusimCrowdFaultCarriesCrowdContext) {
  fault::failpoints().arm("backend.enqueue.gpusim", 10);
  const core::SimulationResults r = core::run_supervised_parallel(
      small_config(backend::BackendKind::kGpuSim, 3), test_policy(), 3);
  ASSERT_GE(r.fault_report.faults, 1u);
  EXPECT_FALSE(r.fault_report.degraded);  // a retry was enough

  const obs::Json dump = read_dump();
  EXPECT_EQ(dump.at("reason").str(), "fault:backend.enqueue.gpusim");
  EXPECT_DOUBLE_EQ(dump.at("context").at("crowd").number(), 0.0);
  EXPECT_NE(find_event(dump, "failpoint", "backend.enqueue.gpusim"), nullptr);
  EXPECT_EQ(last_recovery_action(dump), "retry");
  // The tail shows what the crowd was doing when it died: batched backend
  // submissions.
  EXPECT_NE(find_event(dump, "enqueue"), nullptr);
}

TEST_F(CrashDumpTest, ExhaustedRetriesRecordDegradeDecision) {
  // Persistent device fault on the gpusim enqueue path: retries exhaust and
  // the supervisor's degrade decision must be the last word in the dump.
  fault::failpoints().arm("backend.enqueue.gpusim", 10,
                          fault::FailPointRegistry::kPersistent);
  const core::SimulationResults r = core::run_supervised_parallel(
      small_config(backend::BackendKind::kGpuSim, 3),
      test_policy(/*max_retries=*/1), 3);
  EXPECT_TRUE(r.fault_report.degraded);

  const obs::Json dump = read_dump();
  EXPECT_EQ(dump.at("reason").str(), "fault:backend.enqueue.gpusim");
  EXPECT_EQ(last_recovery_action(dump), "degrade");
  EXPECT_NE(find_event(dump, "recovery", "backend.enqueue.gpusim"), nullptr);
}

TEST_F(CrashDumpTest, CheckpointFaultLandsInFlightTail) {
  // Checkpoint I/O faults are absorbed inside take_checkpoint (no
  // classification dump), but the tripped failpoint still lands in the
  // flight ring, so an operator-rendered dump names it.
  fault::failpoints().arm("checkpoint.save", 2);
  const core::SimulationResults r = core::run_supervised_simulation(
      small_config(backend::BackendKind::kHost, 0), test_policy());
  ASSERT_GE(r.fault_report.checkpoint_faults, 1u);

  const obs::Json dump =
      obs::flight_recorder().crash_dump_json("operator-requested");
  EXPECT_NE(find_event(dump, "failpoint", "checkpoint.save"), nullptr);
  // Successful checkpoints around the absorbed fault also leave marks.
  EXPECT_NE(find_event(dump, "checkpoint", "checkpoint.save"), nullptr);
  ASSERT_TRUE(dump.has("failpoints"));
  EXPECT_GE(dump.at("failpoints").at("total_fired").number(), 1.0);
}

TEST_F(CrashDumpTest, RecoveredRunStillMatchesUndisturbedTrajectory) {
  // The forensic layer must be pure observation: a fault-injected run that
  // dumps on recovery ends on the same trajectory as a quiet run.
  const core::SimulationConfig cfg =
      small_config(backend::BackendKind::kHost, 0);
  fault::failpoints().arm("backend.enqueue", 50);
  const core::SimulationResults faulted =
      core::run_supervised_simulation(cfg, test_policy());
  fault::failpoints().disarm_all();
  const core::SimulationResults quiet =
      core::run_supervised_simulation(cfg, test_policy());
  EXPECT_EQ(faulted.trajectory_hash, quiet.trajectory_hash);
}

}  // namespace
}  // namespace dqmc
