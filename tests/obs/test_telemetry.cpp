// Telemetry stream (ProgressReporter): every JSONL record must satisfy the
// v1 schema (validate_record is the authority), counters must be monotone,
// the stream must end with a phase:"done" record whose ETA is zero, and
// attaching telemetry to a run must leave the golden manifest byte-stable
// (observation, not perturbation). docs/OBSERVABILITY.md documents the
// record schema these tests pin down.
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dqmc/run_manifest.h"
#include "dqmc/simulation.h"
#include "obs/metrics.h"

namespace dqmc::obs {
namespace {

std::vector<Json> read_records(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "no telemetry stream at " << path;
  std::vector<Json> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(Json::parse(line));
  }
  return records;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "telemetry_test.jsonl";
    std::remove(path_.c_str());
    metrics().set_enabled(false);
    metrics().reset();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    metrics().set_enabled(false);
    metrics().reset();
  }

  ProgressOptions options(double interval_ms = 0.0) {
    ProgressOptions opt;
    opt.jsonl_path = path_;
    opt.interval_ms = interval_ms;
    opt.label = "telemetry_test";
    opt.total_sweeps = 12;
    opt.warmup_sweeps = 4;
    opt.walkers = 2;
    return opt;
  }

  std::string path_;
};

TEST_F(TelemetryTest, EveryRecordIsSchemaValidAndMonotone) {
  {
    ProgressReporter reporter(options());
    for (int i = 0; i < 4; ++i) reporter.on_sweep(/*warmup=*/true);
    for (int i = 0; i < 8; ++i) reporter.on_sweep(/*warmup=*/false);
    reporter.finish();
    EXPECT_EQ(reporter.sweeps_done(), 12u);
  }

  const std::vector<Json> records = read_records(path_);
  ASSERT_GE(records.size(), 2u);
  double prev_done = -1.0;
  double prev_seq = -1.0;
  for (const Json& record : records) {
    std::string error;
    EXPECT_TRUE(ProgressReporter::validate_record(record, &error)) << error;
    EXPECT_EQ(record.at("label").str(), "telemetry_test");
    EXPECT_GE(record.at("sweeps_done").number(), prev_done);  // monotone
    EXPECT_GT(record.at("seq").number(), prev_seq);
    prev_done = record.at("sweeps_done").number();
    prev_seq = record.at("seq").number();
  }
  // Phases appear in schedule order; the stream is sealed by "done".
  EXPECT_EQ(records.front().at("phase").str(), "warmup");
  const Json& last = records.back();
  EXPECT_EQ(last.at("phase").str(), "done");
  EXPECT_DOUBLE_EQ(last.at("sweeps_done").number(), 12.0);
  EXPECT_DOUBLE_EQ(last.at("sweeps_total").number(), 12.0);
  EXPECT_DOUBLE_EQ(last.at("eta_seconds").number(), 0.0);
  EXPECT_DOUBLE_EQ(last.at("walkers").number(), 2.0);
}

TEST_F(TelemetryTest, IntervalThrottlesPeriodicRecords) {
  {
    ProgressReporter reporter(options(/*interval_ms=*/3.6e6));
    for (int i = 0; i < 12; ++i) reporter.on_sweep(i < 4);
    reporter.finish();
    // First sweep emits immediately, the huge interval suppresses the rest,
    // finish() always seals the stream: exactly two records.
    EXPECT_EQ(reporter.records_emitted(), 2u);
  }
  const std::vector<Json> records = read_records(path_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.back().at("phase").str(), "done");
}

TEST_F(TelemetryTest, FinishIsIdempotentAndDestructorSeals) {
  {
    ProgressReporter reporter(options());
    for (int i = 0; i < 3; ++i) reporter.on_sweep(true);
    reporter.finish();
    reporter.finish();  // second call must not duplicate the "done" record
  }                     // destructor calls finish() again
  const std::vector<Json> records = read_records(path_);
  int done_records = 0;
  for (const Json& record : records) {
    if (record.at("phase").str() == "done") ++done_records;
  }
  EXPECT_EQ(done_records, 1);
}

TEST_F(TelemetryTest, ValidateRecordRejectsMalformedRecords) {
  ProgressReporter reporter(options());
  reporter.on_sweep(true);
  reporter.finish();
  const std::vector<Json> records = read_records(path_);
  ASSERT_FALSE(records.empty());
  const Json good = records.back();
  ASSERT_TRUE(ProgressReporter::validate_record(good, nullptr));

  std::string error;
  // No key removal in Json: rebuild the record without one field.
  Json rebuilt = Json::object();
  for (const auto& [key, value] : good.members()) {
    if (key != "eta_seconds") rebuilt.set(key, value);
  }
  EXPECT_FALSE(ProgressReporter::validate_record(rebuilt, &error));
  EXPECT_NE(error.find("eta_seconds"), std::string::npos);

  Json bad_phase = good;
  bad_phase.set("phase", "cooldown");
  EXPECT_FALSE(ProgressReporter::validate_record(bad_phase, &error));

  Json overdone = good;
  overdone.set("sweeps_done", 99.0).set("sweeps_total", 12.0);
  EXPECT_FALSE(ProgressReporter::validate_record(overdone, &error));

  Json wrong_version = good;
  wrong_version.set("telemetry_version", 2);
  EXPECT_FALSE(ProgressReporter::validate_record(wrong_version, &error));

  EXPECT_FALSE(ProgressReporter::validate_record(Json("not an object"),
                                                 &error));
}

TEST_F(TelemetryTest, QuantileGaugesComeFromTheMetricsRegistry) {
  metrics().set_enabled(true);
  for (int i = 1; i <= 100; ++i) {
    metrics().observe("gemm.gflops", static_cast<double>(i));
  }
  metrics().gauge("metropolis.accept_rate").set(0.5);
  {
    ProgressReporter reporter(options());
    reporter.on_sweep(false);
    reporter.finish();
  }
  const std::vector<Json> records = read_records(path_);
  ASSERT_FALSE(records.empty());
  const Json& record = records.front();
  // Nearest-rank quantiles over {1..100}: p50 -> 51, p95 -> 96, p99 -> 100.
  EXPECT_DOUBLE_EQ(record.at("gemm_gflops_p50").number(), 51.0);
  EXPECT_DOUBLE_EQ(record.at("gemm_gflops_p95").number(), 96.0);
  EXPECT_DOUBLE_EQ(record.at("gemm_gflops_p99").number(), 100.0);
  EXPECT_DOUBLE_EQ(record.at("accept_rate").number(), 0.5);
}

TEST_F(TelemetryTest, GoldenManifestIsByteStableUnderTelemetry) {
  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 4;
  cfg.bins = 2;
  cfg.seed = 5;

  const core::SimulationResults quiet = core::run_simulation(cfg);
  const std::string quiet_golden = core::golden_manifest(quiet).dump(2);

  metrics().set_enabled(true);
  std::string streamed_golden;
  {
    ProgressOptions opt = options();
    opt.total_sweeps = 6;
    opt.warmup_sweeps = 2;
    opt.walkers = 1;
    ProgressReporter reporter(opt);
    const core::SimulationResults streamed = core::run_simulation(
        cfg, [&reporter](linalg::idx, linalg::idx, bool warmup) {
          reporter.on_sweep(warmup);
        });
    reporter.finish();
    streamed_golden = core::golden_manifest(streamed).dump(2);
  }

  EXPECT_EQ(quiet_golden, streamed_golden);
  // And the stream itself was real and valid.
  for (const Json& record : read_records(path_)) {
    std::string error;
    EXPECT_TRUE(ProgressReporter::validate_record(record, &error)) << error;
  }
}

}  // namespace
}  // namespace dqmc::obs
