// The kill-a-worker determinism suite: SIGKILL (or wedge, or corrupt the
// pipe of) one worker mid-sweep at a deterministic fail-point tick, and the
// fleet must finish with EVERY per-chain trajectory hash — survivors and
// recovered chains alike — bitwise-equal to an undisturbed fleet run and to
// the single-process crowd baseline at the same seeds. A dead process never
// forks a surviving trajectory.
//
// gpusim cases are compiled out under ThreadSanitizer (threads after a
// multi-threaded fork are unsupported there); the host matrix runs under
// every sanitizer.
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "fleet/coordinator.h"

#if defined(__SANITIZE_THREAD__)
#define DQMC_FLEET_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DQMC_FLEET_TSAN 1
#endif
#endif

namespace dqmc::fleet {
namespace {

core::SimulationConfig small_config(
    backend::BackendKind kind = backend::BackendKind::kHost) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 47;
  cfg.walker_batch = 2;
  return cfg;
}

core::SupervisorPolicy test_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 2;
  return policy;
}

FleetConfig fleet_config(idx workers) {
  FleetConfig fc;
  fc.workers = workers;
  fc.snapshot_interval = 1;
  return fc;
}

/// The disturbed run must be indistinguishable in the physics: same hash
/// fold, same per-chain hashes (survivors untouched, recovered chains
/// bit-replayed), same committed estimates and sweep counters.
void expect_same_physics(const FleetResult& disturbed,
                         const FleetResult& undisturbed) {
  EXPECT_EQ(disturbed.results.trajectory_hash,
            undisturbed.results.trajectory_hash);
  EXPECT_EQ(disturbed.chain_hashes, undisturbed.chain_hashes);
  const auto& dm = disturbed.results.measurements;
  const auto& um = undisturbed.results.measurements;
  EXPECT_EQ(dm.density().mean, um.density().mean);
  EXPECT_EQ(dm.density().error, um.density().error);
  EXPECT_EQ(dm.double_occupancy().mean, um.double_occupancy().mean);
  EXPECT_EQ(dm.af_structure_factor().mean, um.af_structure_factor().mean);
  EXPECT_EQ(dm.average_sign().mean, um.average_sign().mean);
  EXPECT_EQ(dm.density_jackknife().error, um.density_jackknife().error);
  EXPECT_EQ(disturbed.results.sweep_stats.proposed,
            undisturbed.results.sweep_stats.proposed);
  EXPECT_EQ(disturbed.results.sweep_stats.accepted,
            undisturbed.results.sweep_stats.accepted);
}

class FleetKillTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::failpoints().disarm_all(); }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

void run_kill_matrix(backend::BackendKind kind, idx workers, int victim,
                     int tick) {
  const core::SimulationConfig cfg = small_config(kind);
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 6;

  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);
  const FleetResult undisturbed =
      run_fleet(cfg, policy, fleet_config(workers), chains);
  EXPECT_EQ(undisturbed.results.trajectory_hash, single.trajectory_hash);

  FleetConfig kill = fleet_config(workers);
  kill.worker_failpoints =
      "fleet.worker.kill:" + std::to_string(tick);
  kill.failpoint_worker = victim;
  const FleetResult disturbed = run_fleet(cfg, policy, kill, chains);

  EXPECT_EQ(disturbed.fleet.worker_deaths, 1u);
  EXPECT_EQ(disturbed.fleet.reassignments, 1u);
  expect_same_physics(disturbed, undisturbed);
  EXPECT_EQ(disturbed.results.trajectory_hash, single.trajectory_hash);
}

TEST_F(FleetKillTest, HostTwoWorkersKillWorkerZero) {
  run_kill_matrix(backend::BackendKind::kHost, 2, 0, 10);
}

TEST_F(FleetKillTest, HostTwoWorkersKillWorkerOne) {
  run_kill_matrix(backend::BackendKind::kHost, 2, 1, 7);
}

TEST_F(FleetKillTest, HostThreeWorkers) {
  run_kill_matrix(backend::BackendKind::kHost, 3, 1, 13);
}

TEST_F(FleetKillTest, EarlyKillBeforeAnySnapshotReplaysFromScratch) {
  // Tick 1 dies on the very first walker-sweep: no snapshot has arrived,
  // so the shard restarts from sweep zero on a survivor — same bits.
  run_kill_matrix(backend::BackendKind::kHost, 2, 0, 1);
}

TEST_F(FleetKillTest, WedgedWorkerIsKilledAndReassigned) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;
  const FleetResult undisturbed =
      run_fleet(cfg, policy, fleet_config(2), chains);

  FleetConfig wedge = fleet_config(2);
  wedge.worker_failpoints = "fleet.worker.wedge:9";
  wedge.failpoint_worker = 0;
  wedge.wedge_timeout_ms = 300;
  const FleetResult disturbed = run_fleet(cfg, policy, wedge, chains);

  EXPECT_EQ(disturbed.fleet.worker_deaths, 1u);
  expect_same_physics(disturbed, undisturbed);
  bool saw_wedge_event = false;
  for (const auto& ev : disturbed.fleet.events) {
    if (ev.site == "fleet.worker.wedged") saw_wedge_event = true;
  }
  EXPECT_TRUE(saw_wedge_event);
}

TEST_F(FleetKillTest, WorkerSendFaultRecoversThroughTheLadder) {
  // "fleet.io.send" fires inside the worker's boundary hook, within the
  // crowd supervisor's try block: the per-worker fault ladder classifies
  // the io fault and replays the segment — the process never dies.
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;
  const FleetResult undisturbed =
      run_fleet(cfg, policy, fleet_config(2), chains);

  FleetConfig faulty = fleet_config(2);
  faulty.worker_failpoints = "fleet.io.send:3";
  faulty.failpoint_worker = 0;
  const FleetResult disturbed = run_fleet(cfg, policy, faulty, chains);

  EXPECT_EQ(disturbed.fleet.worker_deaths, 0u);
  EXPECT_EQ(disturbed.results.trajectory_hash,
            undisturbed.results.trajectory_hash);
  EXPECT_EQ(disturbed.chain_hashes, undisturbed.chain_hashes);
  // The ladder recorded the classified io fault in the merged report.
  EXPECT_GE(disturbed.results.fault_report.faults, 1u);
  bool saw_io = false;
  for (const auto& ev : disturbed.results.fault_report.events) {
    if (ev.site == "fleet.io.send" && ev.fault_class == "io") saw_io = true;
  }
  EXPECT_TRUE(saw_io);
}

TEST_F(FleetKillTest, CoordinatorRecvFaultDisposesThePeerAndRecovers) {
  // Coordinator-side torture: an injected fault at the read site classifies
  // exactly like malformed traffic — the peer is disposed of (killed +
  // reaped), its shard reassigned, and the physics is unchanged.
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;
  const FleetResult undisturbed =
      run_fleet(cfg, policy, fleet_config(2), chains);

  fault::failpoints().arm_spec("fleet.io.recv:4");
  const FleetResult disturbed = run_fleet(cfg, policy, fleet_config(2), chains);
  fault::failpoints().disarm_all();

  EXPECT_EQ(disturbed.fleet.protocol_faults, 1u);
  EXPECT_EQ(disturbed.fleet.worker_deaths, 1u);
  expect_same_physics(disturbed, undisturbed);
  bool saw_io_event = false;
  for (const auto& ev : disturbed.fleet.events) {
    if (ev.fault_class == "io") saw_io_event = true;
  }
  EXPECT_TRUE(saw_io_event);
}

TEST_F(FleetKillTest, ShardThatKillsEveryHostAborts) {
  // Both workers armed (failpoint_worker = -1): the shard keeps murdering
  // its hosts until max_reassigns trips and the run aborts loudly instead
  // of spinning forever.
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  FleetConfig kill = fleet_config(2);
  kill.worker_failpoints = "fleet.worker.kill:1+";
  kill.failpoint_worker = -1;
  kill.max_reassigns = 1;
  EXPECT_THROW(run_fleet(cfg, policy, kill, 4), Error);
}

#if !defined(DQMC_FLEET_TSAN)
TEST_F(FleetKillTest, GpusimTwoWorkersKill) {
  run_kill_matrix(backend::BackendKind::kGpuSim, 2, 0, 10);
}

TEST_F(FleetKillTest, GpusimThreeWorkersKill) {
  run_kill_matrix(backend::BackendKind::kGpuSim, 3, 1, 7);
}
#endif  // !DQMC_FLEET_TSAN

}  // namespace
}  // namespace dqmc::fleet
