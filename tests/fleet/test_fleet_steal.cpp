// Work-stealing determinism: an idle worker steals whole walkers from the
// busiest shard at a lockstep boundary — migrating their checkpoints AND
// committed accumulator bins — and the merged result stays bitwise-equal to
// the single-process baseline. Steals change WHO computes, never WHAT.
#include <gtest/gtest.h>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fleet/coordinator.h"

namespace dqmc::fleet {
namespace {

core::SimulationConfig steal_config() {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  // Long enough that an idle worker reliably catches a running victim at a
  // boundary: one ragged shard (below) finishes early and frees its worker.
  cfg.warmup_sweeps = 10;
  cfg.measurement_sweeps = 30;
  cfg.bins = 5;
  cfg.seed = 71;
  cfg.walker_batch = 4;
  return cfg;
}

core::SupervisorPolicy test_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 2;  // frequent boundaries = steal windows
  policy.max_retries = 2;
  return policy;
}

TEST(FleetSteal, StolenWalkersKeepTheirBits) {
  const core::SimulationConfig cfg = steal_config();
  const core::SupervisorPolicy policy = test_policy();
  // 6 chains in crowds of 4: shards of 4 and 2. The 2-walker shard's owner
  // finishes first, goes idle, and steals from the 4-walker straggler.
  const idx chains = 6;

  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);

  FleetConfig fc;
  fc.workers = 2;
  fc.snapshot_interval = 1;
  fc.steal = true;
  const FleetResult fleet = run_fleet(cfg, policy, fc, chains);

  // The steal itself is timing-dependent (the idle worker has to catch the
  // victim mid-run), so don't assert it happened — assert it was HARMLESS.
  // The dedicated torture below forces the window deterministically.
  EXPECT_EQ(fleet.results.trajectory_hash, single.trajectory_hash);
  EXPECT_EQ(fleet.results.measurements.density().mean,
            single.measurements.density().mean);
  EXPECT_EQ(fleet.results.measurements.density().error,
            single.measurements.density().error);
  EXPECT_EQ(fleet.results.measurements.density_jackknife().error,
            single.measurements.density_jackknife().error);
  EXPECT_EQ(fleet.results.sweep_stats.proposed, single.sweep_stats.proposed);
}

TEST(FleetSteal, StealWindowForcedByAWedgedStart) {
  // Make the steal deterministic: worker 1's shard is tiny (it goes idle
  // almost immediately), worker 0 owns everything else. Repeat a few seeds
  // so at least one run exercises a granted steal; every run must be
  // bitwise-correct either way.
  std::uint64_t granted = 0;
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    core::SimulationConfig cfg = steal_config();
    cfg.seed = seed;
    const core::SupervisorPolicy policy = test_policy();
    const idx chains = 6;
    const core::SimulationResults single =
        core::run_supervised_parallel(cfg, policy, chains);
    FleetConfig fc;
    fc.workers = 2;
    fc.snapshot_interval = 1;
    const FleetResult fleet = run_fleet(cfg, policy, fc, chains);
    granted += fleet.fleet.steals;
    ASSERT_EQ(fleet.results.trajectory_hash, single.trajectory_hash)
        << "seed " << seed << " (steals=" << fleet.fleet.steals << ")";
    ASSERT_EQ(fleet.results.measurements.double_occupancy().error,
              single.measurements.double_occupancy().error)
        << "seed " << seed;
  }
  // Across four runs of this shape at least one steal should land; if this
  // ever flakes the shape needs more sweeps, not a weaker assert.
  EXPECT_GE(granted, 1u);
}

TEST(FleetSteal, DecliningAStealIsHarmless) {
  // steal requests to an idle or just-finishing victim are declined; the
  // report distinguishes granted from declined and the physics is identical
  // to steal-free runs.
  const core::SimulationConfig cfg = steal_config();
  const core::SupervisorPolicy policy = test_policy();
  FleetConfig on;
  on.workers = 3;
  FleetConfig off = on;
  off.steal = false;
  const FleetResult with_steal = run_fleet(cfg, policy, on, 6);
  const FleetResult without = run_fleet(cfg, policy, off, 6);
  EXPECT_EQ(with_steal.results.trajectory_hash,
            without.results.trajectory_hash);
  EXPECT_EQ(with_steal.chain_hashes, without.chain_hashes);
  EXPECT_EQ(without.fleet.steals + without.fleet.steals_declined, 0u);
}

}  // namespace
}  // namespace dqmc::fleet
