// Fleet determinism suite, the no-fault half: an N-worker fleet run must
// bitwise-match the single-process crowd path (run_supervised_parallel) —
// same trajectory-hash fold, same binned and jackknife estimates, same
// sweep counters — for any worker count, with stealing on or off, on both
// backends. "Which process ran a chain" must never be observable in the
// physics.
//
// Under ThreadSanitizer the gpusim cases are compiled out: a forked worker
// would create backend threads after a multi-threaded fork, which TSan's
// runtime does not support. The host-backend worker runs serially
// (par::set_thread_serial) and is exercised under every sanitizer.
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fleet/coordinator.h"
#include "fleet/options.h"

#if defined(__SANITIZE_THREAD__)
#define DQMC_FLEET_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DQMC_FLEET_TSAN 1
#endif
#endif

namespace dqmc::fleet {
namespace {

core::SimulationConfig small_config(
    backend::BackendKind kind = backend::BackendKind::kHost) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 31;
  cfg.walker_batch = 2;  // a shard is a crowd of two chains
  return cfg;
}

core::SupervisorPolicy test_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 2;
  return policy;
}

FleetConfig fleet_config(idx workers) {
  FleetConfig fc;
  fc.workers = workers;
  fc.snapshot_interval = 1;
  return fc;
}

/// The full bitwise contract for an undisturbed fleet: hash fold, binned
/// estimates, jackknife estimates, and the summed sweep/strat counters all
/// equal the single-process merge.
void expect_equivalent(const FleetResult& fleet,
                       const core::SimulationResults& single) {
  EXPECT_EQ(fleet.results.trajectory_hash, single.trajectory_hash);
  const auto& fm = fleet.results.measurements;
  const auto& sm = single.measurements;
  EXPECT_EQ(fm.density().mean, sm.density().mean);
  EXPECT_EQ(fm.density().error, sm.density().error);
  EXPECT_EQ(fm.double_occupancy().mean, sm.double_occupancy().mean);
  EXPECT_EQ(fm.double_occupancy().error, sm.double_occupancy().error);
  EXPECT_EQ(fm.kinetic_energy().mean, sm.kinetic_energy().mean);
  EXPECT_EQ(fm.moment_sq().mean, sm.moment_sq().mean);
  EXPECT_EQ(fm.af_structure_factor().mean, sm.af_structure_factor().mean);
  EXPECT_EQ(fm.af_structure_factor().error, sm.af_structure_factor().error);
  EXPECT_EQ(fm.pair_s().mean, sm.pair_s().mean);
  EXPECT_EQ(fm.pair_d().mean, sm.pair_d().mean);
  EXPECT_EQ(fm.average_sign().mean, sm.average_sign().mean);
  // Satellite contract: the cross-process merge reproduces
  // merge_chain_results' jackknife estimates bit for bit.
  EXPECT_EQ(fm.density_jackknife().mean, sm.density_jackknife().mean);
  EXPECT_EQ(fm.density_jackknife().error, sm.density_jackknife().error);
  EXPECT_EQ(fm.double_occupancy_jackknife().mean,
            sm.double_occupancy_jackknife().mean);
  EXPECT_EQ(fm.double_occupancy_jackknife().error,
            sm.double_occupancy_jackknife().error);
  EXPECT_EQ(fm.kinetic_energy_jackknife().mean,
            sm.kinetic_energy_jackknife().mean);
  EXPECT_EQ(fm.moment_sq_jackknife().mean, sm.moment_sq_jackknife().mean);
  EXPECT_EQ(fleet.results.sweep_stats.proposed, single.sweep_stats.proposed);
  EXPECT_EQ(fleet.results.sweep_stats.accepted, single.sweep_stats.accepted);
  EXPECT_EQ(fleet.results.backend_name, single.backend_name);
}

TEST(Fleet, TwoWorkersMatchSingleProcess) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 6;
  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);
  const FleetResult fleet =
      run_fleet(cfg, policy, fleet_config(2), chains);
  expect_equivalent(fleet, single);
  EXPECT_EQ(fleet.fleet.worker_deaths, 0u);
  EXPECT_EQ(fleet.fleet.protocol_faults, 0u);
  ASSERT_EQ(fleet.chain_hashes.size(), static_cast<std::size_t>(chains));
}

TEST(Fleet, WorkerCountIsUnobservable) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 6;
  const FleetResult one = run_fleet(cfg, policy, fleet_config(1), chains);
  const FleetResult three = run_fleet(cfg, policy, fleet_config(3), chains);
  EXPECT_EQ(one.results.trajectory_hash, three.results.trajectory_hash);
  EXPECT_EQ(one.chain_hashes, three.chain_hashes);
  EXPECT_EQ(one.results.measurements.density().error,
            three.results.measurements.density().error);
}

TEST(Fleet, MoreWorkersThanShardsIsFine) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;  // 2 shards
  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);
  const FleetResult fleet = run_fleet(cfg, policy, fleet_config(4), chains);
  expect_equivalent(fleet, single);
}

TEST(Fleet, RaggedLastShardMatches) {
  core::SimulationConfig cfg = small_config();
  cfg.walker_batch = 4;
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 6;  // shards of 4 + 2
  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);
  const FleetResult fleet = run_fleet(cfg, policy, fleet_config(2), chains);
  expect_equivalent(fleet, single);
  EXPECT_EQ(fleet.fleet.shards, 2);
}

TEST(Fleet, StealOnAndOffAgreeBitwise) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 8;
  FleetConfig no_steal = fleet_config(2);
  no_steal.steal = false;
  const FleetResult a = run_fleet(cfg, policy, fleet_config(2), chains);
  const FleetResult b = run_fleet(cfg, policy, no_steal, chains);
  EXPECT_EQ(a.results.trajectory_hash, b.results.trajectory_hash);
  EXPECT_EQ(a.chain_hashes, b.chain_hashes);
  EXPECT_EQ(b.fleet.steals, 0u);
}

TEST(Fleet, SparseSnapshotsDoNotChangeTheResult) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;
  FleetConfig sparse = fleet_config(2);
  sparse.snapshot_interval = 3;
  const FleetResult dense = run_fleet(cfg, policy, fleet_config(2), chains);
  const FleetResult few = run_fleet(cfg, policy, sparse, chains);
  EXPECT_EQ(dense.results.trajectory_hash, few.results.trajectory_hash);
  EXPECT_LT(few.fleet.snapshots, dense.fleet.snapshots);
}

TEST(Fleet, ChainHashFoldMatchesTheFlatFold) {
  const core::SimulationConfig cfg = small_config();
  const core::SupervisorPolicy policy = test_policy();
  const FleetResult fleet = run_fleet(cfg, policy, fleet_config(2), 6);
  std::uint64_t fold = 0;  // merge_chain_results folds from the zero hash
  for (std::uint64_t h : fleet.chain_hashes) {
    fold = core::mix_chain_hash(fold, h);
  }
  EXPECT_EQ(fold, fleet.results.trajectory_hash);
}

TEST(Fleet, RejectsZeroWalkerBatch) {
  core::SimulationConfig cfg = small_config();
  cfg.walker_batch = 0;
  EXPECT_THROW(run_fleet(cfg, test_policy(), fleet_config(2), 4), Error);
}

#if !defined(DQMC_FLEET_TSAN)
TEST(Fleet, GpusimBackendMatchesSingleProcess) {
  const core::SimulationConfig cfg =
      small_config(backend::BackendKind::kGpuSim);
  const core::SupervisorPolicy policy = test_policy();
  const idx chains = 4;
  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);
  const FleetResult fleet = run_fleet(cfg, policy, fleet_config(2), chains);
  expect_equivalent(fleet, single);
}

TEST(Fleet, BackendsAgreeOnTheHashAcrossTheFleet) {
  const core::SupervisorPolicy policy = test_policy();
  const FleetResult host =
      run_fleet(small_config(backend::BackendKind::kHost), policy,
                fleet_config(2), 4);
  const FleetResult sim =
      run_fleet(small_config(backend::BackendKind::kGpuSim), policy,
                fleet_config(2), 4);
  EXPECT_EQ(host.results.trajectory_hash, sim.results.trajectory_hash);
}
#endif  // !DQMC_FLEET_TSAN

}  // namespace
}  // namespace dqmc::fleet
