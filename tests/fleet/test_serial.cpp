// Fleet payload-serialization tests: a chain partial must survive the pipe
// bit-for-bit — the coordinator's chain-order merge of deserialized
// partials IS the physics, so every accumulator, counter, and hash has to
// round-trip exactly. ShardState carries those partials plus v1 checkpoints.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fleet/serial.h"

namespace dqmc::fleet {
namespace {

core::SimulationConfig small_config() {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 17;
  return cfg;
}

/// Real committed state to serialize: run one small chain to completion.
core::SimulationResults run_one(std::uint64_t seed) {
  core::SimulationConfig cfg = small_config();
  cfg.seed = seed;
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 4;
  return core::run_supervised_simulation(cfg, policy);
}

TEST(Serial, ChainPartialRoundTripsBitwise) {
  const core::SimulationResults src = run_one(17);
  const std::string blob = serialize_chain_partial(src);

  core::SimulationResults dst(src.config);
  deserialize_chain_partial(blob, dst);

  EXPECT_EQ(dst.trajectory_hash, src.trajectory_hash);
  EXPECT_EQ(dst.sweep_stats.proposed, src.sweep_stats.proposed);
  EXPECT_EQ(dst.sweep_stats.accepted, src.sweep_stats.accepted);
  EXPECT_EQ(dst.backend_name, src.backend_name);
  EXPECT_EQ(dst.wrap_uploads_skipped, src.wrap_uploads_skipped);
  // Accumulators: estimates AND jackknife resamplings must match to the
  // last bit (bins, counts, sums all round-trip).
  EXPECT_EQ(dst.measurements.density().mean, src.measurements.density().mean);
  EXPECT_EQ(dst.measurements.density().error,
            src.measurements.density().error);
  EXPECT_EQ(dst.measurements.double_occupancy().mean,
            src.measurements.double_occupancy().mean);
  EXPECT_EQ(dst.measurements.density_jackknife().mean,
            src.measurements.density_jackknife().mean);
  EXPECT_EQ(dst.measurements.density_jackknife().error,
            src.measurements.density_jackknife().error);
  EXPECT_EQ(dst.measurements.average_sign().mean,
            src.measurements.average_sign().mean);
  EXPECT_EQ(dst.fault_report.faults, src.fault_report.faults);
  EXPECT_EQ(dst.fault_report.final_backend, src.fault_report.final_backend);
}

TEST(Serial, ReserializingTheDeserializedCopyIsIdentical) {
  const core::SimulationResults src = run_one(23);
  const std::string blob = serialize_chain_partial(src);
  core::SimulationResults dst(src.config);
  deserialize_chain_partial(blob, dst);
  // Fixed point after one round trip: the codec loses nothing it encodes.
  EXPECT_EQ(serialize_chain_partial(dst), blob);
}

TEST(Serial, SeedMismatchIsRejected) {
  const core::SimulationResults src = run_one(17);
  const std::string blob = serialize_chain_partial(src);
  core::SimulationConfig other = small_config();
  other.seed = 18;  // a different chain: merging would corrupt the fold
  core::SimulationResults dst(other);
  EXPECT_THROW(deserialize_chain_partial(blob, dst), Error);
}

TEST(Serial, GarbageBlobThrowsNotCrashes) {
  core::SimulationResults dst(small_config());
  EXPECT_THROW(deserialize_chain_partial("not a partial", dst), Error);
  EXPECT_THROW(deserialize_chain_partial("", dst), Error);
  std::string truncated = serialize_chain_partial(run_one(17));
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(deserialize_chain_partial(truncated, dst), Error);
}

TEST(Serial, ShardStateRoundTrip) {
  ShardState state;
  state.first = 6;
  state.walkers = 2;
  state.done = 9;
  state.checkpoints = {"ckpt-blob-0\nwith newline", std::string("\0bin", 4)};
  state.partials = {"partial-a", ""};

  const ShardState back = decode_shard_state(encode_shard_state(state));
  EXPECT_EQ(back.first, state.first);
  EXPECT_EQ(back.walkers, state.walkers);
  EXPECT_EQ(back.done, state.done);
  ASSERT_EQ(back.checkpoints.size(), state.checkpoints.size());
  EXPECT_EQ(back.checkpoints[0], state.checkpoints[0]);
  EXPECT_EQ(back.checkpoints[1], state.checkpoints[1]);
  ASSERT_EQ(back.partials.size(), state.partials.size());
  EXPECT_EQ(back.partials[0], state.partials[0]);
  EXPECT_EQ(back.partials[1], state.partials[1]);
}

TEST(Serial, EmptyShardStateRoundTrips) {
  const ShardState back = decode_shard_state(encode_shard_state(ShardState{}));
  EXPECT_EQ(back.walkers, 0);
  EXPECT_TRUE(back.checkpoints.empty());
  EXPECT_TRUE(back.partials.empty());
}

TEST(Serial, MalformedShardStateThrows) {
  EXPECT_THROW(decode_shard_state("garbage"), Error);
  EXPECT_THROW(decode_shard_state(""), Error);
}

TEST(Serial, MakeChainPartialSeedsByGlobalChainIndex) {
  const core::SimulationConfig cfg = small_config();
  const auto p0 = make_chain_partial(cfg, 0);
  const auto p5 = make_chain_partial(cfg, 5);
  EXPECT_EQ(p0->config.seed, cfg.seed);
  EXPECT_EQ(p5->config.seed, cfg.seed + 5);
}

}  // namespace
}  // namespace dqmc::fleet
