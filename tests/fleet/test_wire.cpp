// Fleet wire-protocol tests: frame round trips through the incremental
// decoder, strict header validation, pipe-backed I/O, and the protocol
// torture pass — deterministic fuzz of truncated / corrupted / reordered
// byte streams, which must always end in a classified io fault or a clean
// "need more bytes", never a hang, desync, or unbounded allocation. The
// asan-fleet preset runs this same binary under AddressSanitizer.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/wire.h"
#include "fleet/worker.h"

namespace dqmc::fleet {
namespace {

Frame expect_one(FrameDecoder& dec) {
  std::optional<Frame> f = dec.next();
  EXPECT_TRUE(f.has_value());
  return f.value_or(Frame{});
}

TEST(Wire, RoundTripSingleFrame) {
  FrameDecoder dec;
  dec.feed(encode_frame(FrameType::kAssign, 7, "payload-bytes"));
  const Frame f = expect_one(dec);
  EXPECT_EQ(f.type, FrameType::kAssign);
  EXPECT_EQ(f.shard, 7u);
  EXPECT_EQ(f.payload, "payload-bytes");
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Wire, EmptyPayloadAndBinaryPayload) {
  FrameDecoder dec;
  std::string binary(256, '\0');
  for (int i = 0; i < 256; ++i) binary[static_cast<std::size_t>(i)] =
      static_cast<char>(i);
  dec.feed(encode_frame(FrameType::kShutdown, 0, ""));
  dec.feed(encode_frame(FrameType::kResult, 3, binary));
  EXPECT_EQ(expect_one(dec).type, FrameType::kShutdown);
  const Frame f = expect_one(dec);
  EXPECT_EQ(f.payload, binary);
}

TEST(Wire, ByteAtATimeFeedYieldsTheSameFrames) {
  const std::string wire = encode_frame(FrameType::kProgress, 1, "aaa") +
                           encode_frame(FrameType::kSnapshot, 2, "bbbb");
  FrameDecoder dec;
  std::vector<Frame> frames;
  for (char c : wire) {
    dec.feed(&c, 1);
    while (auto f = dec.next()) frames.push_back(*f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kProgress);
  EXPECT_EQ(frames[0].payload, "aaa");
  EXPECT_EQ(frames[1].type, FrameType::kSnapshot);
  EXPECT_EQ(frames[1].shard, 2u);
}

TEST(Wire, MidFrameReportsTruncation) {
  FrameDecoder dec;
  const std::string wire = encode_frame(FrameType::kResult, 0, "0123456789");
  dec.feed(wire.substr(0, wire.size() - 3));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.mid_frame());  // EOF now would be a truncated stream
  dec.feed(wire.substr(wire.size() - 3));
  EXPECT_TRUE(dec.next().has_value());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Wire, BadMagicThrowsAndPoisons) {
  FrameDecoder dec;
  std::string wire = encode_frame(FrameType::kHello, 0, "x");
  wire[0] = 'Z';
  dec.feed(wire);
  EXPECT_THROW(dec.next(), FleetProtocolError);
  // Poisoned: even valid bytes afterwards keep throwing — a corrupted peer
  // is never resynchronized.
  dec.feed(encode_frame(FrameType::kHello, 0, "y"));
  EXPECT_THROW(dec.next(), FleetProtocolError);
}

TEST(Wire, UnknownTypeNonzeroFlagsAndOversizeLengthThrow) {
  {
    FrameDecoder dec;
    std::string wire = encode_frame(FrameType::kHello, 0, "");
    wire[4] = 99;  // type LSB
    dec.feed(wire);
    EXPECT_THROW(dec.next(), FleetProtocolError);
  }
  {
    FrameDecoder dec;
    std::string wire = encode_frame(FrameType::kHello, 0, "");
    wire[6] = 1;  // reserved flags
    dec.feed(wire);
    EXPECT_THROW(dec.next(), FleetProtocolError);
  }
  {
    FrameDecoder dec;
    std::string wire = encode_frame(FrameType::kHello, 0, "");
    wire[19] = 0x7f;  // length MSB: ~2^63 bytes "pending"
    dec.feed(wire);
    // Must throw on the HEADER, without waiting for (or allocating) the
    // implausible payload.
    EXPECT_THROW(dec.next(), FleetProtocolError);
  }
}

TEST(Wire, HeaderValidatedBeforePayloadArrives) {
  FrameDecoder dec;
  std::string header = encode_frame(FrameType::kHello, 0, "zzzz");
  header.resize(kWireHeaderSize);
  header[0] = 'Z';
  dec.feed(header);  // corrupted header, payload never sent
  EXPECT_THROW(dec.next(), FleetProtocolError);
}

TEST(Wire, WriteAndReadThroughARealPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  write_frame(fds[1], FrameType::kYield, 5, "stolen");
  FrameDecoder dec;
  ASSERT_TRUE(read_into(fds[0], dec));
  const Frame f = expect_one(dec);
  EXPECT_EQ(f.type, FrameType::kYield);
  EXPECT_EQ(f.shard, 5u);
  EXPECT_EQ(f.payload, "stolen");
  ::close(fds[1]);
  EXPECT_FALSE(read_into(fds[0], dec));  // clean EOF
  ::close(fds[0]);
}

TEST(Wire, WriteToClosedPipeThrowsProtocolError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // SIGPIPE must not kill the test; write_frame reports EPIPE instead.
  ::signal(SIGPIPE, SIG_IGN);
  EXPECT_THROW(write_frame(fds[1], FrameType::kHello, 0, "x"),
               FleetProtocolError);
  ::close(fds[1]);
}

// --- protocol torture -----------------------------------------------------
//
// Deterministic splitmix-style generator: no <random>, no global state, the
// same byte storm every run on every platform.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() {
    s_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }

 private:
  std::uint64_t s_;
};

std::string random_valid_frame(Lcg& rng) {
  const FrameType types[] = {FrameType::kHello,    FrameType::kAssign,
                             FrameType::kResult,   FrameType::kSnapshot,
                             FrameType::kSteal,    FrameType::kYield,
                             FrameType::kProgress, FrameType::kShutdown,
                             FrameType::kFail,     FrameType::kTelemetry};
  std::string payload(rng.below(64), '\0');
  for (char& c : payload) c = static_cast<char>(rng.below(256));
  return encode_frame(types[rng.below(10)], rng.below(16), payload);
}

/// Feed `wire` in random chunk sizes; count frames until exhaustion or a
/// protocol fault. The invariant under ANY input: next() either yields a
/// frame, asks for more bytes, or throws FleetProtocolError — and once it
/// throws, it always throws.
void drive(const std::string& wire, Lcg& rng, std::uint64_t* frames,
           std::uint64_t* faults) {
  FrameDecoder dec;
  std::size_t off = 0;
  bool poisoned = false;
  while (off < wire.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(37), wire.size() - off);
    dec.feed(wire.data() + off, n);
    off += n;
    try {
      while (dec.next()) ++*frames;
      if (poisoned) FAIL() << "decoder resurrected after a protocol fault";
    } catch (const FleetProtocolError&) {
      if (!poisoned) ++*faults;
      poisoned = true;
    }
  }
}

TEST(WireTorture, TruncatedReorderedAndCorruptedStreams) {
  Lcg rng(2026);
  std::uint64_t frames = 0, faults = 0;
  for (int round = 0; round < 400; ++round) {
    // A run of valid frames...
    std::string wire;
    const int n_frames = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n_frames; ++i) wire += random_valid_frame(rng);
    switch (rng.below(4)) {
      case 0:  // truncate mid-frame
        wire.resize(rng.below(static_cast<std::uint32_t>(wire.size())) + 1);
        break;
      case 1: {  // flip bytes
        const int flips = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < flips; ++i) {
          wire[rng.below(static_cast<std::uint32_t>(wire.size()))] =
              static_cast<char>(rng.below(256));
        }
        break;
      }
      case 2: {  // splice two frames mid-header ("reordered" pipe chunks)
        const std::string extra = random_valid_frame(rng);
        const std::size_t cut = rng.below(kWireHeaderSize);
        wire = wire.substr(0, cut) + extra + wire.substr(cut);
        break;
      }
      default:  // pure garbage storm
        wire.assign(rng.below(256) + 1, '\0');
        for (char& c : wire) c = static_cast<char>(rng.below(256));
        break;
    }
    drive(wire, rng, &frames, &faults);
  }
  // The storm must exercise BOTH outcomes, or the fuzz is vacuous.
  EXPECT_GT(frames, 100u);
  EXPECT_GT(faults, 100u);
}

TEST(WireTorture, PureGarbageNeverAllocatesUnbounded) {
  Lcg rng(7);
  for (int round = 0; round < 64; ++round) {
    FrameDecoder dec;
    std::string junk(kWireHeaderSize, '\0');
    for (char& c : junk) c = static_cast<char>(rng.below(256));
    dec.feed(junk);
    try {
      while (dec.next()) {
      }
      // A full random header happening to be valid is possible but
      // astronomically unlikely (magic must match); both outcomes are fine.
    } catch (const FleetProtocolError&) {
    }
  }
}

// --- worker-unique artifact paths (the per-worker extension of the
// process-unique dump-path fix) ------------------------------------------
TEST(WorkerPaths, InsertsTagBeforeKnownExtensions) {
  EXPECT_EQ(worker_unique_path("dump.json", 3, 4242),
            "dump.w3.p4242.json");
  EXPECT_EQ(worker_unique_path("telemetry.jsonl", 0, 1),
            "telemetry.w0.p1.jsonl");
  EXPECT_EQ(worker_unique_path("/tmp/a/b.json", 12, 99),
            "/tmp/a/b.w12.p99.json");
}

TEST(WorkerPaths, AppendsWhenNoKnownExtension) {
  EXPECT_EQ(worker_unique_path("dump.bin", 1, 2), "dump.bin.w1.p2");
  EXPECT_EQ(worker_unique_path("dump", 1, 2), "dump.w1.p2");
}

TEST(WorkerPaths, DistinctWorkersNeverCollide) {
  EXPECT_NE(worker_unique_path("d.json", 0, 10),
            worker_unique_path("d.json", 1, 10));
  EXPECT_NE(worker_unique_path("d.json", 0, 10),
            worker_unique_path("d.json", 0, 11));
}

}  // namespace
}  // namespace dqmc::fleet
