#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/stream.h"
#include "linalg/util.h"
#include "parallel/topology.h"
#include "testing/test_utils.h"

namespace dqmc::gpu {
namespace {

using linalg::idx;
using linalg::Matrix;
using linalg::MatrixRng;

TEST(DeviceSpec, GemmTimeScalesWithWork) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const double t256 = spec.gemm_seconds(256, 256, 256);
  const double t512 = spec.gemm_seconds(512, 512, 512);
  EXPECT_GT(t512, t256);
  // Large-n rate approaches peak: 2n^3 / t within 30% of peak at n=1024.
  const double t1024 = spec.gemm_seconds(1024, 1024, 1024);
  const double rate = 2.0 * 1024.0 * 1024.0 * 1024.0 / t1024 / 1e9;
  EXPECT_GT(rate, 0.7 * spec.gemm_peak_gflops);
  EXPECT_LT(rate, spec.gemm_peak_gflops);
}

TEST(DeviceSpec, SmallGemmIsFarBelowPeak) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const double t64 = spec.gemm_seconds(64, 64, 64);
  const double rate = 2.0 * 64.0 * 64.0 * 64.0 / t64 / 1e9;
  EXPECT_LT(rate, 0.2 * spec.gemm_peak_gflops);
}

TEST(DeviceSpec, RowwiseScalIsSlowerThanFusedKernel) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const idx n = 512;
  const double bytes = 2.0 * n * n * sizeof(double);
  EXPECT_GT(spec.rowwise_scal_seconds(n, n),
            5.0 * spec.fused_kernel_seconds(bytes));
}

TEST(StreamThread, RunsSerialToKeepWaitIdleDeadlockFree) {
  // Runtime tasks may legitimately block in wait_idle() until the stream
  // drains; if the stream thread entered the shared task runtime (nested
  // parallel GEMM tiles), help-first stealing could hand it exactly such a
  // task and it would wait on itself. The guard is num_threads() == 1 on
  // the stream thread, so every parallel region it enters runs inline.
  StreamThread stream;
  std::atomic<int> threads{0};
  std::atomic<bool> serial{false};
  stream.submit([&] {
    threads = par::num_threads();
    serial = par::thread_is_serial();
  });
  stream.wait_idle();
  EXPECT_TRUE(serial.load());
  EXPECT_EQ(threads.load(), 1);
  // The flag is per-thread: the submitting side keeps its own budget.
  EXPECT_FALSE(par::thread_is_serial());
}

TEST(Device, RoundTripTransferPreservesData) {
  Device dev;
  MatrixRng rng(179);
  Matrix host = rng.uniform_matrix(33, 17);
  DeviceMatrix d = dev.alloc_matrix(33, 17);
  dev.set_matrix(host, d);
  Matrix back(33, 17);
  dev.get_matrix(d, back);
  EXPECT_MATRIX_NEAR(back, host, 0.0);
}

TEST(Device, GemmMatchesHostBitForBit) {
  Device dev;
  MatrixRng rng(181);
  Matrix a = rng.uniform_matrix(40, 30);
  Matrix b = rng.uniform_matrix(30, 20);
  DeviceMatrix da = dev.alloc_matrix(40, 30);
  DeviceMatrix db = dev.alloc_matrix(30, 20);
  DeviceMatrix dc = dev.alloc_matrix(40, 20);
  dev.set_matrix(a, da);
  dev.set_matrix(b, db);
  dev.gemm(Trans::No, Trans::No, 1.0, da, db, 0.0, dc);
  Matrix got(40, 20);
  dev.get_matrix(dc, got);

  Matrix expected = linalg::matmul(a, b);
  EXPECT_MATRIX_NEAR(got, expected, 0.0);  // same kernel => identical bits
}

TEST(Device, ScaleKernelsAgreeWithEachOther) {
  Device dev;
  MatrixRng rng(191);
  Matrix src = rng.uniform_matrix(24, 24);
  linalg::Vector v(24);
  for (idx i = 0; i < 24; ++i) v[i] = rng.uniform(0.5, 2.0);

  DeviceMatrix dsrc = dev.alloc_matrix(24, 24);
  DeviceMatrix d1 = dev.alloc_matrix(24, 24);
  DeviceMatrix d2 = dev.alloc_matrix(24, 24);
  DeviceVector dv = dev.alloc_vector(24);
  dev.set_matrix(src, dsrc);
  dev.set_vector(v.data(), 24, dv);
  dev.scale_rows_kernel(dv, dsrc, d1);
  dev.scale_rows_rowwise(dv, dsrc, d2);
  Matrix m1(24, 24), m2(24, 24);
  dev.get_matrix(d1, m1);
  dev.get_matrix(d2, m2);
  EXPECT_MATRIX_NEAR(m1, m2, 0.0);
  // But the modeled cost differs: rowwise must be the slow path.
  // (checked at the spec level in DeviceSpec tests)
}

TEST(Device, WrapScaleKernelComputesConjugation) {
  Device dev;
  MatrixRng rng(193);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g0 = g;
  linalg::Vector v(16);
  for (idx i = 0; i < 16; ++i) v[i] = rng.uniform(0.5, 2.0);

  DeviceMatrix dg = dev.alloc_matrix(16, 16);
  DeviceVector dv = dev.alloc_vector(16);
  dev.set_matrix(g, dg);
  dev.set_vector(v.data(), 16, dv);
  dev.wrap_scale_kernel(dv, dg);
  dev.get_matrix(dg, g);
  for (idx j = 0; j < 16; ++j)
    for (idx i = 0; i < 16; ++i)
      EXPECT_NEAR(g(i, j), v[i] * g0(i, j) / v[j], 1e-14);
}

TEST(Device, StatsAccumulateTransfersAndKernels) {
  Device dev;
  Matrix host = Matrix::identity(8);
  DeviceMatrix d = dev.alloc_matrix(8, 8);
  dev.reset_stats();
  dev.set_matrix(host, d);
  DeviceMatrix c = dev.alloc_matrix(8, 8);
  dev.gemm(Trans::No, Trans::No, 1.0, d, d, 0.0, c);
  dev.synchronize();
  const DeviceStats s = dev.stats();
  EXPECT_EQ(s.transfers, 1u);
  EXPECT_EQ(s.kernel_launches, 1u);
  EXPECT_DOUBLE_EQ(s.bytes_h2d, 8.0 * 8.0 * sizeof(double));
  EXPECT_GT(s.compute_seconds, 0.0);
  EXPECT_GT(s.transfer_seconds, 0.0);
}

TEST(Device, ShapeMismatchesThrow) {
  Device dev;
  Matrix host = Matrix::identity(4);
  DeviceMatrix d = dev.alloc_matrix(5, 5);
  EXPECT_THROW(dev.set_matrix(host, d), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::gpu
