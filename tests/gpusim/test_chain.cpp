#include "gpusim/chain.h"

#include <gtest/gtest.h>

#include <vector>

#include "hubbard/bmatrix.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::gpu {
namespace {

using hubbard::BMatrixFactory;
using hubbard::hs_t;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::idx;
using linalg::Matrix;
using linalg::MatrixRng;

struct ChainFixture : ::testing::Test {
  ChainFixture() : lat(4, 4), factory(lat, params()) {}
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 2.0;
    p.slices = 10;
    return p;
  }
  std::vector<hs_t> random_field(std::uint64_t seed) {
    MatrixRng rng(seed);
    std::vector<hs_t> h(16);
    for (auto& x : h) x = rng.uniform() < 0.5 ? hs_t{-1} : hs_t{1};
    return h;
  }
  Lattice lat;
  BMatrixFactory factory;
};

TEST_F(ChainFixture, ClusterProductMatchesHostChain) {
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());

  const int k = 5;
  std::vector<std::vector<hs_t>> fields;
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < k; ++l) {
    fields.push_back(random_field(200 + l));
    vs.push_back(factory.v_diagonal(fields.back().data(), Spin::Up));
  }

  Matrix gpu_result = chain.cluster_product(vs, /*fused_kernel=*/true);

  // Host reference: B_{k-1} ... B_0.
  Matrix host = factory.make_b(fields[0].data(), Spin::Up);
  for (int l = 1; l < k; ++l) {
    host = testing::reference_matmul(factory.make_b(fields[l].data(), Spin::Up),
                                     host);
  }
  EXPECT_MATRIX_NEAR(gpu_result, host, 1e-11);
}

TEST_F(ChainFixture, FusedAndRowwiseKernelsGiveSameProduct) {
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < 3; ++l) {
    auto h = random_field(300 + l);
    vs.push_back(factory.v_diagonal(h.data(), Spin::Down));
  }
  Matrix fused = chain.cluster_product(vs, true);
  Matrix rowwise = chain.cluster_product(vs, false);
  EXPECT_MATRIX_NEAR(fused, rowwise, 0.0);
}

TEST_F(ChainFixture, WrapMatchesHostWrap) {
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());
  auto h = random_field(400);
  MatrixRng rng(401);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g_host = g;
  Matrix work(16, 16);
  factory.wrap(h.data(), Spin::Up, g_host, work);

  chain.wrap(g, factory.v_diagonal(h.data(), Spin::Up), true);
  EXPECT_MATRIX_NEAR(g, g_host, 1e-10);
}

TEST_F(ChainFixture, WrapVariantsAgree) {
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());
  auto h = random_field(500);
  MatrixRng rng(501);
  Matrix g1 = rng.uniform_matrix(16, 16);
  Matrix g2 = g1;
  const linalg::Vector v = factory.v_diagonal(h.data(), Spin::Up);
  chain.wrap(g1, v, true);
  chain.wrap(g2, v, false);
  EXPECT_MATRIX_NEAR(g1, g2, 1e-12);
}

TEST_F(ChainFixture, ClusteringAmortizesTransfersBetterThanWrapping) {
  // The Fig. 9 story: per flop, clustering moves far less PCIe data than
  // wrapping. Compare modeled transfer seconds per modeled compute second.
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());

  std::vector<linalg::Vector> vs;
  for (int l = 0; l < 10; ++l) {
    auto h = random_field(600 + l);
    vs.push_back(factory.v_diagonal(h.data(), Spin::Up));
  }
  dev.reset_stats();
  (void)chain.cluster_product(vs, true);
  dev.synchronize();
  const DeviceStats cluster = dev.stats();

  MatrixRng rng(601);
  Matrix g = rng.uniform_matrix(16, 16);
  dev.reset_stats();
  chain.wrap(g, vs[0], true);
  dev.synchronize();
  const DeviceStats wrap = dev.stats();

  const double cluster_ratio = cluster.transfer_seconds / cluster.compute_seconds;
  const double wrap_ratio = wrap.transfer_seconds / wrap.compute_seconds;
  EXPECT_LT(cluster_ratio, wrap_ratio);
}

TEST_F(ChainFixture, FlopCountsArePositiveAndOrdered) {
  EXPECT_GT(cluster_product_flops(256, 10), wrap_flops(256));
  EXPECT_GT(wrap_flops(256), 0.0);
}

TEST_F(ChainFixture, EmptyClusterThrows) {
  Device dev;
  GpuBChain chain(dev, factory.b(), factory.b_inv());
  std::vector<linalg::Vector> vs;
  EXPECT_THROW(chain.cluster_product(vs), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::gpu
