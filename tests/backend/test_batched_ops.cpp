// Batched ComputeBackend operations (walker crowds): every batched call
// must be bitwise identical per item to issuing the same ops one at a time,
// on both backends — and on gpusim the batch must amortize the launch and
// transfer fees the cost model charges per enqueue.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/bbatch.h"
#include "backend/bchain.h"
#include "hubbard/bmatrix.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::backend {
namespace {

using hubbard::BMatrixFactory;
using hubbard::hs_t;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::Matrix;
using linalg::MatrixRng;
using linalg::Vector;

void expect_bitwise_equal(ConstMatrixView a, ConstMatrixView b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a(i, j)),
                std::bit_cast<std::uint64_t>(b(i, j)))
          << what << " differs at (" << i << ", " << j << ")";
    }
  }
}

struct BatchedOpsFixture : ::testing::TestWithParam<BackendKind> {
  static constexpr idx kN = 16;
  static constexpr idx kItems = 5;

  std::unique_ptr<MatrixHandle> uploaded(ComputeBackend& be,
                                         ConstMatrixView m) {
    auto h = be.alloc_matrix(m.rows(), m.cols());
    be.upload(m, *h);
    return h;
  }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchedOpsFixture,
                         ::testing::Values(BackendKind::kHost,
                                           BackendKind::kGpuSim),
                         [](const auto& pinfo) {
                           return std::string(backend_kind_name(pinfo.param));
                         });

TEST_P(BatchedOpsFixture, GemmBatchedSharedOperandMatchesSingleOps) {
  auto be = make_backend(GetParam());
  MatrixRng rng(17);
  const Matrix shared = rng.uniform_matrix(kN, kN);
  auto shared_h = uploaded(*be, shared);

  std::vector<Matrix> b_host, batched(static_cast<std::size_t>(kItems)),
      solo(static_cast<std::size_t>(kItems));
  std::vector<std::unique_ptr<MatrixHandle>> b_h, c_h;
  std::vector<const MatrixHandle*> bp;
  std::vector<MatrixHandle*> cp;
  for (idx i = 0; i < kItems; ++i) {
    b_host.push_back(rng.uniform_matrix(kN, kN));
    b_h.push_back(uploaded(*be, b_host.back()));
    c_h.push_back(be->alloc_matrix(kN, kN));
    bp.push_back(b_h.back().get());
    cp.push_back(c_h.back().get());
  }

  be->gemm_batched(Trans::No, Trans::No, 1.0, {shared_h.get()}, bp, 0.0, cp);
  for (idx i = 0; i < kItems; ++i) {
    batched[static_cast<std::size_t>(i)] = Matrix(kN, kN);
    be->download(*cp[static_cast<std::size_t>(i)],
                 batched[static_cast<std::size_t>(i)]);
  }

  // The same products as kItems independent single-op enqueues.
  for (idx i = 0; i < kItems; ++i) {
    auto c = be->alloc_matrix(kN, kN);
    be->gemm(Trans::No, Trans::No, 1.0, *shared_h,
             *bp[static_cast<std::size_t>(i)], 0.0, *c);
    solo[static_cast<std::size_t>(i)] = Matrix(kN, kN);
    be->download(*c, solo[static_cast<std::size_t>(i)]);
    expect_bitwise_equal(batched[static_cast<std::size_t>(i)],
                         solo[static_cast<std::size_t>(i)],
                         "item " + std::to_string(i));
  }
}

TEST_P(BatchedOpsFixture, ScaleRowsAndWrapScaleBatchedMatchSingleOps) {
  auto be = make_backend(GetParam());
  MatrixRng rng(29);

  std::vector<Matrix> src_host, v_host;
  std::vector<std::unique_ptr<MatrixHandle>> src_h, dst_h, g_h;
  std::vector<std::unique_ptr<VectorHandle>> v_h;
  std::vector<const VectorHandle*> vp;
  std::vector<const MatrixHandle*> srcp;
  std::vector<MatrixHandle*> dstp, gp;
  for (idx i = 0; i < kItems; ++i) {
    src_host.push_back(rng.uniform_matrix(kN, kN));
    Matrix v = rng.uniform_matrix(kN, 1);
    for (idx r = 0; r < kN; ++r) v(r, 0) += 2.0;  // keep diag invertible
    v_host.push_back(v);
    src_h.push_back(uploaded(*be, src_host.back()));
    dst_h.push_back(be->alloc_matrix(kN, kN));
    g_h.push_back(uploaded(*be, src_host.back()));
    v_h.push_back(be->alloc_vector(kN));
    be->upload_vector(v.data(), kN, *v_h.back());
    vp.push_back(v_h.back().get());
    srcp.push_back(src_h.back().get());
    dstp.push_back(dst_h.back().get());
    gp.push_back(g_h.back().get());
  }

  be->scale_rows_batched(vp, srcp, dstp);
  be->wrap_scale_batched(vp, gp);

  for (idx i = 0; i < kItems; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    Matrix scaled(kN, kN), wrapped(kN, kN);
    be->download(*dstp[s], scaled);
    be->download(*gp[s], wrapped);

    auto solo_dst = be->alloc_matrix(kN, kN);
    be->scale_rows(*vp[s], *srcp[s], *solo_dst);
    Matrix solo_scaled(kN, kN);
    be->download(*solo_dst, solo_scaled);
    expect_bitwise_equal(scaled, solo_scaled, "scale_rows item " +
                                                  std::to_string(i));

    auto solo_g = uploaded(*be, src_host[s]);
    be->wrap_scale(*vp[s], *solo_g);
    Matrix solo_wrapped(kN, kN);
    be->download(*solo_g, solo_wrapped);
    expect_bitwise_equal(wrapped, solo_wrapped,
                         "wrap_scale item " + std::to_string(i));
  }
}

struct BatchedChainFixture : ::testing::TestWithParam<BackendKind> {
  BatchedChainFixture() : lat(4, 4), factory(lat, params()) {}
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 2.0;
    p.slices = 10;
    return p;
  }
  std::vector<hs_t> random_field(std::uint64_t seed) {
    MatrixRng rng(seed);
    std::vector<hs_t> h(16);
    for (auto& x : h) x = rng.uniform() < 0.5 ? hs_t{-1} : hs_t{1};
    return h;
  }
  Lattice lat;
  BMatrixFactory factory;
};

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchedChainFixture,
                         ::testing::Values(BackendKind::kHost,
                                           BackendKind::kGpuSim),
                         [](const auto& pinfo) {
                           return std::string(backend_kind_name(pinfo.param));
                         });

TEST_P(BatchedChainFixture, WrapBatchedMatchesPerItemChains) {
  const idx items = 4;
  auto be = make_backend(GetParam());
  auto be_solo = make_backend(GetParam());
  BatchedBChain crowd(*be, factory.b(), factory.b_inv(), items);
  std::vector<std::unique_ptr<BackendBChain>> chains;
  for (idx i = 0; i < items; ++i) {
    chains.push_back(std::make_unique<BackendBChain>(*be_solo, factory.b(),
                                                     factory.b_inv()));
  }

  MatrixRng rng(41);
  std::vector<Matrix> g_batched, g_solo;
  std::vector<Vector> vs;
  for (idx i = 0; i < items; ++i) {
    g_batched.push_back(rng.uniform_matrix(factory.n(), factory.n()));
    g_solo.push_back(g_batched.back());
    const auto h = random_field(500 + static_cast<std::uint64_t>(i));
    vs.push_back(factory.v_diagonal(h.data(), Spin::Up));
  }

  // Three lockstep wraps; after the first, G is resident on both paths.
  for (int pass = 0; pass < 3; ++pass) {
    std::vector<MatrixView> gv(g_batched.begin(), g_batched.end());
    std::vector<const Vector*> vv;
    for (const Vector& v : vs) vv.push_back(&v);
    const std::vector<char> unchanged(static_cast<std::size_t>(items),
                                      pass > 0 ? char{1} : char{0});
    crowd.wrap_batched(gv, vv, unchanged);
    for (idx i = 0; i < items; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      chains[s]->wrap(g_solo[s], vs[s], /*fused_kernel=*/true,
                      /*host_unchanged=*/pass > 0);
      expect_bitwise_equal(g_batched[s], g_solo[s],
                           "pass " + std::to_string(pass) + " item " +
                               std::to_string(i));
    }
  }
  for (idx i = 0; i < items; ++i) {
    EXPECT_EQ(crowd.wrap_uploads_skipped(i),
              chains[static_cast<std::size_t>(i)]->wrap_uploads_skipped());
    EXPECT_GT(crowd.wrap_uploads_skipped(i), 0u);
  }
}

TEST_P(BatchedChainFixture, ClusterProductBatchedMatchesPerItemChains) {
  const idx items = 3;
  const int k = 5;
  auto be = make_backend(GetParam());
  auto be_solo = make_backend(GetParam());
  BatchedBChain crowd(*be, factory.b(), factory.b_inv(), items);

  std::vector<std::vector<Vector>> vs(static_cast<std::size_t>(items));
  for (idx i = 0; i < items; ++i) {
    for (int l = 0; l < k; ++l) {
      const auto h =
          random_field(700 + static_cast<std::uint64_t>(i) * 10 +
                       static_cast<std::uint64_t>(l));
      vs[static_cast<std::size_t>(i)].push_back(
          factory.v_diagonal(h.data(), Spin::Up));
    }
  }

  const std::vector<Matrix> products = crowd.cluster_product_batched(vs);
  ASSERT_EQ(products.size(), static_cast<std::size_t>(items));
  for (idx i = 0; i < items; ++i) {
    BackendBChain solo(*be_solo, factory.b(), factory.b_inv());
    const Matrix expected =
        solo.cluster_product(vs[static_cast<std::size_t>(i)]);
    expect_bitwise_equal(products[static_cast<std::size_t>(i)], expected,
                         "item " + std::to_string(i));
  }
}

// The gpusim cost model charges a launch fee per enqueue and a transaction
// fee per transfer: a W-item batch must reach the device in FEWER launches
// and transfers — and less modeled time — than W single-op sequences.
TEST(BatchedOpsGpusim, AmortizesLaunchAndTransferFees) {
  const idx n = 32, items = 8;
  MatrixRng rng(53);
  const Matrix shared = rng.uniform_matrix(n, n);
  std::vector<Matrix> b_host;
  for (idx i = 0; i < items; ++i) b_host.push_back(rng.uniform_matrix(n, n));

  auto run = [&](bool batched) {
    auto be = make_backend(BackendKind::kGpuSim);
    auto a = be->alloc_matrix(n, n);
    be->upload(shared, *a);
    std::vector<std::unique_ptr<MatrixHandle>> b_h, c_h;
    std::vector<const MatrixHandle*> bp;
    std::vector<MatrixHandle*> cp;
    for (idx i = 0; i < items; ++i) {
      b_h.push_back(be->alloc_matrix(n, n));
      be->upload(b_host[static_cast<std::size_t>(i)], *b_h.back());
      c_h.push_back(be->alloc_matrix(n, n));
      bp.push_back(b_h.back().get());
      cp.push_back(c_h.back().get());
    }
    be->reset_stats();  // count only the compute phase
    if (batched) {
      be->gemm_batched(Trans::No, Trans::No, 1.0, {a.get()}, bp, 0.0, cp);
    } else {
      for (idx i = 0; i < items; ++i) {
        be->gemm(Trans::No, Trans::No, 1.0, *a, *bp[static_cast<std::size_t>(i)],
                 0.0, *cp[static_cast<std::size_t>(i)]);
      }
    }
    be->synchronize();
    return be->stats();
  };

  const BackendStats one = run(true);
  const BackendStats many = run(false);
  EXPECT_LT(one.kernel_launches, many.kernel_launches);
  EXPECT_LT(one.compute_seconds, many.compute_seconds);
}

}  // namespace
}  // namespace dqmc::backend
