// BackendBChain: clustering and wrapping through the ComputeBackend seam.
// Ported from the retired gpusim chain tests, now parameterized over both
// backends, plus the resident-G upload-skip contract.
#include "backend/bchain.h"

#include <gtest/gtest.h>

#include <vector>

#include "backend/gpusim_backend.h"
#include "hubbard/bmatrix.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::backend {
namespace {

using hubbard::BMatrixFactory;
using hubbard::hs_t;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::Matrix;
using linalg::MatrixRng;

struct ChainFixture : ::testing::TestWithParam<BackendKind> {
  ChainFixture() : lat(4, 4), factory(lat, params()) {}
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 2.0;
    p.slices = 10;
    return p;
  }
  std::vector<hs_t> random_field(std::uint64_t seed) {
    MatrixRng rng(seed);
    std::vector<hs_t> h(16);
    for (auto& x : h) x = rng.uniform() < 0.5 ? hs_t{-1} : hs_t{1};
    return h;
  }
  Lattice lat;
  BMatrixFactory factory;
};

INSTANTIATE_TEST_SUITE_P(AllBackends, ChainFixture,
                         ::testing::Values(BackendKind::kHost,
                                           BackendKind::kGpuSim),
                         [](const auto& info) {
                           return std::string(backend_kind_name(info.param));
                         });

TEST_P(ChainFixture, ClusterProductMatchesHostChain) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());

  const int k = 5;
  std::vector<std::vector<hs_t>> fields;
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < k; ++l) {
    fields.push_back(random_field(200 + l));
    vs.push_back(factory.v_diagonal(fields.back().data(), Spin::Up));
  }

  Matrix result = chain.cluster_product(vs, /*fused_kernel=*/true);

  // Host reference: B_{k-1} ... B_0.
  Matrix host = factory.make_b(fields[0].data(), Spin::Up);
  for (int l = 1; l < k; ++l) {
    host = testing::reference_matmul(factory.make_b(fields[l].data(), Spin::Up),
                                     host);
  }
  EXPECT_MATRIX_NEAR(result, host, 1e-11);
}

TEST_P(ChainFixture, FusedAndRowwiseKernelsGiveSameProduct) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < 3; ++l) {
    auto h = random_field(300 + l);
    vs.push_back(factory.v_diagonal(h.data(), Spin::Down));
  }
  Matrix fused = chain.cluster_product(vs, true);
  Matrix rowwise = chain.cluster_product(vs, false);
  EXPECT_MATRIX_NEAR(fused, rowwise, 0.0);
}

TEST_P(ChainFixture, WrapMatchesHostWrap) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());
  auto h = random_field(400);
  MatrixRng rng(401);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g_host = g;
  Matrix work(16, 16);
  factory.wrap(h.data(), Spin::Up, g_host, work);

  chain.wrap(g, factory.v_diagonal(h.data(), Spin::Up), true);
  // Identical gemm + fused-scaling sequence: bitwise equal.
  EXPECT_MATRIX_NEAR(g, g_host, 0.0);
}

TEST_P(ChainFixture, WrapVariantsAgree) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());
  auto h = random_field(500);
  MatrixRng rng(501);
  Matrix g1 = rng.uniform_matrix(16, 16);
  Matrix g2 = g1;
  const linalg::Vector v = factory.v_diagonal(h.data(), Spin::Up);
  chain.wrap(g1, v, true);
  chain.wrap(g2, v, false);
  EXPECT_MATRIX_NEAR(g1, g2, 1e-12);
}

TEST_P(ChainFixture, ResidentGreensSkipsUpload) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());
  auto h1 = random_field(700);
  auto h2 = random_field(701);
  MatrixRng rng(702);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g_ref = g;

  const linalg::Vector v1 = factory.v_diagonal(h1.data(), Spin::Up);
  const linalg::Vector v2 = factory.v_diagonal(h2.data(), Spin::Up);

  chain.wrap(g, v1, true);  // first wrap always uploads
  EXPECT_EQ(chain.wrap_uploads_skipped(), 0u);
  // The host copy is untouched since the previous wrap downloaded it, so
  // the resident device copy may stand in for the upload...
  chain.wrap(g, v2, true, /*host_unchanged=*/true);
  EXPECT_EQ(chain.wrap_uploads_skipped(), 1u);

  // ...and the result must be bitwise what uploading would have produced.
  BackendBChain fresh(*be, factory.b(), factory.b_inv());
  fresh.wrap(g_ref, v1, true);
  fresh.wrap(g_ref, v2, true, /*host_unchanged=*/false);
  EXPECT_EQ(fresh.wrap_uploads_skipped(), 0u);
  EXPECT_MATRIX_NEAR(g, g_ref, 0.0);
}

TEST_P(ChainFixture, EmptyClusterThrows) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.b(), factory.b_inv());
  std::vector<linalg::Vector> vs;
  EXPECT_THROW(chain.cluster_product(vs), InvalidArgument);
}

TEST(ChainAccounting, ClusteringAmortizesTransfersBetterThanWrapping) {
  // The Fig. 9 story: per flop, clustering moves far less PCIe data than
  // wrapping. Compare modeled transfer seconds per modeled compute second.
  Lattice lat(4, 4);
  BMatrixFactory factory(lat, ChainFixture::params());
  GpuSimBackend gpusim;
  BackendBChain chain(gpusim, factory.b(), factory.b_inv());

  MatrixRng rng(600);
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < 10; ++l) {
    linalg::Vector v(16);
    for (idx i = 0; i < 16; ++i) v[i] = rng.uniform(0.7, 1.4);
    vs.push_back(std::move(v));
  }
  gpusim.reset_stats();
  (void)chain.cluster_product(vs, true);
  gpusim.synchronize();
  const BackendStats cluster = gpusim.stats();

  Matrix g = rng.uniform_matrix(16, 16);
  gpusim.reset_stats();
  chain.wrap(g, vs[0], true);
  gpusim.synchronize();
  const BackendStats wrap = gpusim.stats();

  const double cluster_ratio =
      cluster.transfer_seconds / cluster.compute_seconds;
  const double wrap_ratio = wrap.transfer_seconds / wrap.compute_seconds;
  EXPECT_LT(cluster_ratio, wrap_ratio);
}

TEST(ChainFlops, FlopCountsArePositiveAndOrdered) {
  EXPECT_GT(cluster_product_flops(256, 10), wrap_flops(256));
  EXPECT_GT(wrap_flops(256), 0.0);
}

}  // namespace
}  // namespace dqmc::backend
