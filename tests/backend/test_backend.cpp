// ComputeBackend contract tests: op-level host<->gpusim parity (bitwise —
// both backends run the library's own kernels), stats accounting, and the
// exposed-wait fix (overlapped compute is not double-counted at drains).
#include "backend/backend.h"

#include <gtest/gtest.h>

#include "backend/gpusim_backend.h"
#include "backend/host_backend.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::backend {
namespace {

using linalg::Matrix;
using linalg::MatrixRng;
using linalg::Vector;

constexpr idx kN = 24;

Matrix random_matrix(std::uint64_t seed) {
  MatrixRng rng(seed);
  return rng.uniform_matrix(kN, kN);
}

Vector random_positive_vector(std::uint64_t seed) {
  MatrixRng rng(seed);
  Vector v(kN);
  for (idx i = 0; i < kN; ++i) v[i] = rng.uniform(0.5, 1.5);
  return v;
}

const BackendKind kKinds[] = {BackendKind::kHost, BackendKind::kGpuSim};

TEST(BackendKindNames, RoundTrip) {
  EXPECT_STREQ(backend_kind_name(BackendKind::kHost), "host");
  EXPECT_STREQ(backend_kind_name(BackendKind::kGpuSim), "gpusim");
  EXPECT_EQ(backend_kind_from_string("host"), BackendKind::kHost);
  EXPECT_EQ(backend_kind_from_string("gpusim"), BackendKind::kGpuSim);
  EXPECT_THROW(backend_kind_from_string("cuda"), InvalidArgument);
}

TEST(BackendFactory, MakesTheRequestedKind) {
  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    ASSERT_NE(be, nullptr);
    EXPECT_EQ(be->kind(), kind);
    EXPECT_STREQ(be->name(), backend_kind_name(kind));
  }
  EXPECT_FALSE(make_backend(BackendKind::kHost)->async());
  EXPECT_TRUE(make_backend(BackendKind::kGpuSim)->async());
}

TEST(Backend, UploadDownloadRoundTrips) {
  const Matrix m = random_matrix(11);
  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    auto h = be->alloc_matrix(kN, kN);
    EXPECT_EQ(h->rows(), kN);
    EXPECT_EQ(h->kind(), kind);
    be->upload(m, *h);
    Matrix back(kN, kN);
    be->download(*h, back);
    EXPECT_MATRIX_NEAR(back, m, 0.0);
  }
}

TEST(Backend, AsyncUploadRoundTrips) {
  const Matrix m = random_matrix(12);
  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    auto h = be->alloc_matrix(kN, kN);
    be->upload_async(m, *h);  // m stays alive and unmodified until...
    Matrix back(kN, kN);
    be->download(*h, back);  // ...the download drains the stream
    EXPECT_MATRIX_NEAR(back, m, 0.0);
  }
}

TEST(Backend, CopyDuplicatesDeviceState) {
  const Matrix m = random_matrix(13);
  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    auto a = be->alloc_matrix(kN, kN);
    auto b = be->alloc_matrix(kN, kN);
    be->upload(m, *a);
    be->copy(*a, *b);
    Matrix back(kN, kN);
    be->download(*b, back);
    EXPECT_MATRIX_NEAR(back, m, 0.0);
  }
}

TEST(Backend, GemmMatchesHostKernelBitwise) {
  const Matrix a = random_matrix(21);
  const Matrix b = random_matrix(22);
  Matrix expected = Matrix::zero(kN, kN);
  linalg::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, expected);

  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    auto ha = be->alloc_matrix(kN, kN);
    auto hb = be->alloc_matrix(kN, kN);
    auto hc = be->alloc_matrix(kN, kN);
    be->upload(a, *ha);
    be->upload(b, *hb);
    be->gemm(Trans::No, Trans::No, 1.0, *ha, *hb, 0.0, *hc);
    Matrix got(kN, kN);
    be->download(*hc, got);
    // Same kernel, same operand order: bitwise identical.
    EXPECT_MATRIX_NEAR(got, expected, 0.0);
  }
}

TEST(Backend, ScalingOpsMatchHostKernelsBitwise) {
  const Matrix m = random_matrix(31);
  const Vector v = random_positive_vector(32);

  Matrix rows_expected(kN, kN);
  linalg::scale_rows_into(v.data(), m, rows_expected);
  Matrix cols_expected = m;
  linalg::scale_cols(v.data(), cols_expected);
  Matrix wrap_expected = m;
  linalg::scale_rows_cols_inv(v.data(), v.data(), wrap_expected);

  for (BackendKind kind : kKinds) {
    for (bool fused : {true, false}) {
      auto be = make_backend(kind);
      auto src = be->alloc_matrix(kN, kN);
      auto dst = be->alloc_matrix(kN, kN);
      auto hv = be->alloc_vector(kN);
      be->upload(m, *src);
      be->upload_vector(v.data(), kN, *hv);

      be->scale_rows(*hv, *src, *dst, fused);
      Matrix got(kN, kN);
      be->download(*dst, got);
      EXPECT_MATRIX_NEAR(got, rows_expected, 0.0);

      be->scale_cols(*hv, *src, *dst);
      be->download(*dst, got);
      EXPECT_MATRIX_NEAR(got, cols_expected, 0.0);

      be->upload(m, *src);
      be->wrap_scale(*hv, *src);
      be->download(*src, got);
      EXPECT_MATRIX_NEAR(got, wrap_expected, 0.0);
    }
  }
}

TEST(Backend, StatsAccumulateAndReset) {
  for (BackendKind kind : kKinds) {
    auto be = make_backend(kind);
    auto a = be->alloc_matrix(kN, kN);
    auto b = be->alloc_matrix(kN, kN);
    auto c = be->alloc_matrix(kN, kN);
    const Matrix m = random_matrix(41);
    be->upload(m, *a);
    be->upload(m, *b);
    be->gemm(Trans::No, Trans::No, 1.0, *a, *b, 0.0, *c);
    be->synchronize();

    const BackendStats s = be->stats();
    EXPECT_GT(s.kernel_launches, 0u);
    EXPECT_EQ(s.transfers, 2u);
    EXPECT_GT(s.bytes_h2d, 0.0);
    EXPECT_GE(s.total_seconds(), s.transfer_seconds);
    EXPECT_GE(s.synchronizations, 1u);

    be->reset_stats();
    EXPECT_EQ(be->stats().kernel_launches, 0u);
    EXPECT_EQ(be->stats().transfers, 0u);
  }
}

TEST(Backend, HostBackendExposesNoAsyncWait) {
  HostBackend be;
  auto a = be.alloc_matrix(kN, kN);
  auto b = be.alloc_matrix(kN, kN);
  auto c = be.alloc_matrix(kN, kN);
  const Matrix m = random_matrix(51);
  be.upload(m, *a);
  be.upload(m, *b);
  be.gemm(Trans::No, Trans::No, 1.0, *a, *b, 0.0, *c);
  be.synchronize();
  be.synchronize();
  // Compute happens inside the call on a synchronous backend: nothing can
  // ever be an exposed stall.
  EXPECT_EQ(be.stats().exposed_wait_seconds, 0.0);
  EXPECT_EQ(be.stats().pipeline_seconds(), be.stats().transfer_seconds);
}

// A cost model so slow that the virtual device is guaranteed to still be
// busy when the host drains — making the exposed wait deterministic.
gpu::DeviceSpec glacial_spec() {
  gpu::DeviceSpec spec;
  spec.gemm_peak_gflops = 1e-9;  // one gemm models ~hours of device time
  return spec;
}

TEST(Backend, GpusimBillsExposedWaitAtDrain) {
  GpuSimBackend be(glacial_spec());
  auto a = be.alloc_matrix(kN, kN);
  auto b = be.alloc_matrix(kN, kN);
  auto c = be.alloc_matrix(kN, kN);
  const Matrix m = random_matrix(61);
  be.upload(m, *a);
  be.upload(m, *b);
  be.reset_stats();
  be.gemm(Trans::No, Trans::No, 1.0, *a, *b, 0.0, *c);
  be.synchronize();
  const BackendStats s = be.stats();
  // The modeled gemm dwarfs the host wall time that elapsed before the
  // drain, so nearly all of it is an exposed stall.
  EXPECT_GT(s.exposed_wait_seconds, 0.5 * s.compute_seconds);
  EXPECT_LE(s.exposed_wait_seconds, s.compute_seconds);
}

TEST(Backend, GpusimDoesNotDoubleCountOverlappedCompute) {
  GpuSimBackend be(glacial_spec());
  auto a = be.alloc_matrix(kN, kN);
  auto b = be.alloc_matrix(kN, kN);
  auto c = be.alloc_matrix(kN, kN);
  const Matrix m = random_matrix(62);
  be.upload(m, *a);
  be.upload(m, *b);
  be.reset_stats();
  be.gemm(Trans::No, Trans::No, 1.0, *a, *b, 0.0, *c);
  be.synchronize();
  const double first = be.stats().exposed_wait_seconds;
  EXPECT_GT(first, 0.0);
  // The timeline was re-anchored at the first drain: draining again (and
  // again) observes an idle device and must not re-bill the same stall.
  be.synchronize();
  be.synchronize();
  EXPECT_EQ(be.stats().exposed_wait_seconds, first);
  EXPECT_EQ(be.stats().synchronizations, 3u);
}

TEST(Backend, ForeignHandleKindIsRejected) {
  auto host = make_backend(BackendKind::kHost);
  auto sim = make_backend(BackendKind::kGpuSim);
  auto h = host->alloc_matrix(kN, kN);
  Matrix m(kN, kN);
  EXPECT_THROW(sim->download(*h, m), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::backend
