// Host <-> gpusim bitwise parity of full engine trajectories: both
// backends execute the library's own kernels in the same order, so entire
// Markov chains — fields, signs, Green's functions — must coincide exactly
// at every (N, L, k) point, including across a checkpoint round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "dqmc/checkpoint.h"
#include "dqmc/engine.h"
#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;

struct ParityPoint {
  idx l;       // lattice edge (N = l*l)
  idx slices;  // L
  idx k;       // cluster size
};

ModelParams params_for(const ParityPoint& pt) {
  ModelParams p;
  p.u = 4.0;
  p.beta = 0.125 * static_cast<double>(pt.slices);
  p.slices = pt.slices;
  return p;
}

EngineConfig config_for(const ParityPoint& pt, backend::BackendKind kind) {
  EngineConfig cfg;
  cfg.cluster_size = pt.k;
  cfg.delay_rank = 8;
  cfg.backend = kind;
  return cfg;
}

void expect_bitwise_equal(DqmcEngine& host, DqmcEngine& sim,
                          const std::string& where) {
  EXPECT_EQ(host.config_sign(), sim.config_sign()) << where;
  for (idx l = 0; l < host.slices(); ++l) {
    for (idx i = 0; i < host.n(); ++i) {
      ASSERT_EQ(host.field()(l, i), sim.field()(l, i))
          << where << ": field differs at slice " << l << " site " << i;
    }
  }
  for (Spin s : hubbard::kSpins) {
    EXPECT_EQ(linalg::relative_difference(host.greens(s), sim.greens(s)), 0.0)
        << where;
  }
}

class BackendParity : public ::testing::TestWithParam<ParityPoint> {};

INSTANTIATE_TEST_SUITE_P(
    Points, BackendParity,
    ::testing::Values(ParityPoint{2, 8, 4},    // N=4, ragged-free
                      ParityPoint{4, 12, 5},   // N=16, ragged tail cluster
                      ParityPoint{4, 20, 10},  // N=16, paper's k=10
                      ParityPoint{6, 10, 5}),  // N=36
    [](const auto& info) {
      return "l" + std::to_string(info.param.l) + "_L" +
             std::to_string(info.param.slices) + "_k" +
             std::to_string(info.param.k);
    });

TEST_P(BackendParity, FullTrajectoryIsBitwiseIdentical) {
  const ParityPoint pt = GetParam();
  Lattice lat(pt.l, pt.l);
  DqmcEngine host(lat, params_for(pt),
                  config_for(pt, backend::BackendKind::kHost), 97);
  DqmcEngine sim(lat, params_for(pt),
                 config_for(pt, backend::BackendKind::kGpuSim), 97);
  host.initialize();
  sim.initialize();
  expect_bitwise_equal(host, sim, "after initialize");

  // Warmup + measurement-style sweeps; acceptance counters must agree
  // sweep by sweep (a single divergent ratio would desynchronize the RNG
  // streams for the rest of the run).
  for (int sweep = 0; sweep < 3; ++sweep) {
    const SweepStats hs = host.sweep();
    const SweepStats ss = sim.sweep();
    ASSERT_EQ(hs.proposed, ss.proposed) << "sweep " << sweep;
    ASSERT_EQ(hs.accepted, ss.accepted) << "sweep " << sweep;
  }
  expect_bitwise_equal(host, sim, "after sweeps");
}

TEST_P(BackendParity, CheckpointRoundTripPreservesParity) {
  const ParityPoint pt = GetParam();
  Lattice lat(pt.l, pt.l);
  DqmcEngine host(lat, params_for(pt),
                  config_for(pt, backend::BackendKind::kHost), 131);
  DqmcEngine sim(lat, params_for(pt),
                 config_for(pt, backend::BackendKind::kGpuSim), 131);
  host.initialize();
  sim.initialize();
  host.sweep();
  sim.sweep();

  // Save the gpusim chain mid-run, restore it into BOTH backends, and let
  // everyone continue: all three trajectories must stay bitwise in step.
  std::stringstream saved;
  save_checkpoint(saved, sim);

  DqmcEngine host_resumed(lat, params_for(pt),
                          config_for(pt, backend::BackendKind::kHost), 0);
  std::stringstream in1(saved.str());
  load_checkpoint(in1, host_resumed);
  DqmcEngine sim_resumed(lat, params_for(pt),
                         config_for(pt, backend::BackendKind::kGpuSim), 0);
  std::stringstream in2(saved.str());
  load_checkpoint(in2, sim_resumed);

  host.sweep();
  sim.sweep();
  host_resumed.sweep();
  sim_resumed.sweep();
  expect_bitwise_equal(host, sim, "original pair");
  expect_bitwise_equal(host_resumed, sim_resumed, "resumed pair");
  expect_bitwise_equal(host, sim_resumed, "original vs resumed");
}

}  // namespace
}  // namespace dqmc::core
