// Structured kinetic applies through the ComputeBackend seam: backend
// kinetic_apply vs the linalg kernel (bitwise), host vs gpusim (bitwise),
// batched vs per-item (bitwise), the structured BackendBChain against the
// factory's cpu path (bitwise) and against a dense chain over the rendered
// B (rounding), and the gpusim cost model's checkerboard-vs-GEMM ordering.
#include "backend/backend.h"

#include <gtest/gtest.h>

#include <vector>

#include "backend/bchain.h"
#include "backend/gpusim_backend.h"
#include "hubbard/bmatrix.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::backend {
namespace {

using hubbard::BMatrixFactory;
using hubbard::hs_t;
using hubbard::KineticKind;
using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;
using linalg::CbSide;
using linalg::Matrix;
using linalg::MatrixRng;

void expect_bitwise_equal(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                          const std::string& where) {
  ASSERT_EQ(a.rows(), b.rows()) << where;
  ASSERT_EQ(a.cols(), b.cols()) << where;
  for (idx i = 0; i < a.rows(); ++i) {
    for (idx j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j))
          << where << ": (" << i << ", " << j << ")";
    }
  }
}

struct KineticFixture : ::testing::TestWithParam<BackendKind> {
  KineticFixture()
      : lat(4, 4), factory(lat, params(), KineticKind::kCheckerboard) {}
  static ModelParams params() {
    ModelParams p;
    p.u = 4.0;
    p.beta = 2.0;
    p.slices = 10;
    p.mu = 0.2;  // nonzero mu exercises the diagonal-scale pass
    return p;
  }
  std::vector<hs_t> random_field(std::uint64_t seed) {
    MatrixRng rng(seed);
    std::vector<hs_t> h(16);
    for (auto& x : h) x = rng.uniform() < 0.5 ? hs_t{-1} : hs_t{1};
    return h;
  }
  Lattice lat;
  BMatrixFactory factory;
};

INSTANTIATE_TEST_SUITE_P(AllBackends, KineticFixture,
                         ::testing::Values(BackendKind::kHost,
                                           BackendKind::kGpuSim),
                         [](const auto& info) {
                           return std::string(backend_kind_name(info.param));
                         });

TEST_P(KineticFixture, HandleReportsOperatorShape) {
  auto be = make_backend(GetParam());
  const linalg::CbOperator& op = factory.kinetic().cb();
  auto k = be->alloc_kinetic(op);
  EXPECT_EQ(k->n(), op.n);
  EXPECT_EQ(k->num_bonds(), op.num_bonds());
  EXPECT_EQ(k->num_groups(), op.num_groups());
  EXPECT_EQ(k->kind(), GetParam());
}

TEST_P(KineticFixture, AllocRejectsMalformedOperator) {
  auto be = make_backend(GetParam());
  linalg::CbOperator bad = factory.kinetic().cb();
  bad.groups[0][0].b = bad.groups[0][0].a;
  EXPECT_THROW(be->alloc_kinetic(bad), InvalidArgument);
}

TEST_P(KineticFixture, ApplyMatchesLinalgKernelBitwise) {
  auto be = make_backend(GetParam());
  const linalg::CbOperator& op = factory.kinetic().cb();
  auto k = be->alloc_kinetic(op);
  MatrixRng rng(910);
  for (const CbSide side : {CbSide::kLeft, CbSide::kRight}) {
    for (const bool inverse : {false, true}) {
      Matrix x = rng.uniform_matrix(16, 16);
      Matrix ref = x;
      linalg::cb_apply(op, side, inverse, ref.view());

      auto d = be->alloc_matrix(16, 16);
      be->upload(x, *d);
      be->kinetic_apply(*k, side, inverse, *d);
      Matrix out(16, 16);
      be->download(*d, out.view());
      expect_bitwise_equal(out, ref,
                           std::string(side == CbSide::kLeft ? "left"
                                                             : "right") +
                               (inverse ? " inverse" : " forward"));
    }
  }
}

TEST(KineticApplyParity, HostAndGpuSimAgreeBitwise) {
  Lattice lat(4, 4);
  BMatrixFactory factory(lat, KineticFixture::params(),
                         KineticKind::kCheckerboard);
  const linalg::CbOperator& op = factory.kinetic().cb();
  MatrixRng rng(911);
  const Matrix x = rng.uniform_matrix(16, 16);

  Matrix results[2];
  const BackendKind kinds[] = {BackendKind::kHost, BackendKind::kGpuSim};
  for (int i = 0; i < 2; ++i) {
    auto be = make_backend(kinds[i]);
    auto k = be->alloc_kinetic(op);
    auto d = be->alloc_matrix(16, 16);
    be->upload(x, *d);
    be->kinetic_apply(*k, CbSide::kLeft, false, *d);
    be->kinetic_apply(*k, CbSide::kRight, true, *d);
    results[i] = Matrix(16, 16);
    be->download(*d, results[i].view());
  }
  expect_bitwise_equal(results[0], results[1], "host vs gpusim");
}

TEST_P(KineticFixture, BatchedApplyMatchesPerItemBitwise) {
  auto be = make_backend(GetParam());
  const linalg::CbOperator& op = factory.kinetic().cb();
  auto k = be->alloc_kinetic(op);
  MatrixRng rng(912);
  for (const idx w : {idx{1}, idx{3}, idx{8}}) {
    std::vector<Matrix> hosts;
    for (idx i = 0; i < w; ++i) hosts.push_back(rng.uniform_matrix(16, 16));

    // Per-item references through the single-op entry point.
    std::vector<Matrix> refs;
    for (idx i = 0; i < w; ++i) {
      auto d = be->alloc_matrix(16, 16);
      be->upload(hosts[static_cast<std::size_t>(i)], *d);
      be->kinetic_apply(*k, CbSide::kLeft, false, *d);
      refs.emplace_back(16, 16);
      be->download(*d, refs.back().view());
    }

    std::vector<std::unique_ptr<MatrixHandle>> devs;
    std::vector<MatrixHandle*> mut;
    for (idx i = 0; i < w; ++i) {
      devs.push_back(be->alloc_matrix(16, 16));
      be->upload(hosts[static_cast<std::size_t>(i)], *devs.back());
      mut.push_back(devs.back().get());
    }
    be->kinetic_apply_batched(*k, CbSide::kLeft, false, mut);
    for (idx i = 0; i < w; ++i) {
      Matrix out(16, 16);
      be->download(*devs[static_cast<std::size_t>(i)], out.view());
      expect_bitwise_equal(out, refs[static_cast<std::size_t>(i)],
                           "W=" + std::to_string(w) + " item " +
                               std::to_string(i));
    }
  }
}

TEST_P(KineticFixture, StructuredWrapMatchesFactoryBitwise) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.kinetic().cb());
  EXPECT_TRUE(chain.structured());
  auto h = random_field(920);
  MatrixRng rng(921);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g_host = g;
  Matrix work(16, 16);
  factory.wrap(h.data(), Spin::Up, g_host, work);

  chain.wrap(g, factory.v_diagonal(h.data(), Spin::Up), true);
  // Same bond-table replay and fused scaling on both paths: bitwise equal.
  expect_bitwise_equal(g, g_host, "structured wrap");
}

TEST_P(KineticFixture, StructuredClusterMatchesFactoryBitwise) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.kinetic().cb());

  const int k = 5;
  std::vector<std::vector<hs_t>> fields;
  std::vector<linalg::Vector> vs;
  for (int l = 0; l < k; ++l) {
    fields.push_back(random_field(930 + l));
    vs.push_back(factory.v_diagonal(fields.back().data(), Spin::Up));
  }
  Matrix result = chain.cluster_product(vs, /*fused_kernel=*/true);

  // Factory reference: B_0 = diag(v_0) B applied to I, then per level the
  // identical replay+scale — the chain's structured path is this sequence.
  Matrix acc = factory.make_b(fields[0].data(), Spin::Up);
  Matrix next(16, 16);
  for (int l = 1; l < k; ++l) {
    factory.apply_b_left(fields[l].data(), Spin::Up, acc, next.view());
    std::swap(acc, next);
  }
  expect_bitwise_equal(result, acc, "structured cluster product");
}

TEST_P(KineticFixture, StructuredChainAgreesWithDenseChainOnRenderedB) {
  // The dense chain runs GEMMs against the RENDERED checkerboard product
  // b()/b_inv(), so the two chains represent the same operator and differ
  // only by GEMM-vs-replay rounding.
  auto be = make_backend(GetParam());
  BackendBChain structured(*be, factory.kinetic().cb());
  BackendBChain dense(*be, factory.b(), factory.b_inv());
  auto h = random_field(940);
  MatrixRng rng(941);
  Matrix g1 = rng.uniform_matrix(16, 16);
  Matrix g2 = g1;
  const linalg::Vector v = factory.v_diagonal(h.data(), Spin::Up);
  structured.wrap(g1, v, true);
  dense.wrap(g2, v, true);
  EXPECT_MATRIX_NEAR(g1, g2, 1e-12);
}

TEST_P(KineticFixture, StructuredResidentGreensSkipsUpload) {
  auto be = make_backend(GetParam());
  BackendBChain chain(*be, factory.kinetic().cb());
  auto h1 = random_field(950);
  auto h2 = random_field(951);
  MatrixRng rng(952);
  Matrix g = rng.uniform_matrix(16, 16);
  Matrix g_ref = g;
  const linalg::Vector v1 = factory.v_diagonal(h1.data(), Spin::Up);
  const linalg::Vector v2 = factory.v_diagonal(h2.data(), Spin::Up);

  chain.wrap(g, v1, true);
  EXPECT_EQ(chain.wrap_uploads_skipped(), 0u);
  chain.wrap(g, v2, true, /*host_unchanged=*/true);
  EXPECT_EQ(chain.wrap_uploads_skipped(), 1u);

  BackendBChain fresh(*be, factory.kinetic().cb());
  fresh.wrap(g_ref, v1, true);
  fresh.wrap(g_ref, v2, true, /*host_unchanged=*/false);
  expect_bitwise_equal(g, g_ref, "resident-G structured wrap");
}

TEST(KineticCostModel, GpuSimBillsCheckerboardWrapBelowDense) {
  // The point of the structured path: on a wrap of the L=16 lattice the
  // modeled device seconds of the bond-table replay undercut the two dense
  // GEMMs.
  Lattice lat(16, 16);
  BMatrixFactory cb(lat, KineticFixture::params(),
                    KineticKind::kCheckerboard);
  BMatrixFactory dn(lat, KineticFixture::params(), KineticKind::kDense);
  MatrixRng rng(960);
  const Matrix g0 = rng.uniform_matrix(256, 256);
  linalg::Vector v(256);
  for (idx i = 0; i < 256; ++i) v[i] = rng.uniform(0.7, 1.4);

  GpuSimBackend be_cb;
  BackendBChain chain_cb(be_cb, cb.kinetic().cb());
  Matrix g = g0;
  be_cb.reset_stats();
  chain_cb.wrap(g, v, true);
  be_cb.synchronize();
  const double cb_seconds = be_cb.stats().compute_seconds;

  GpuSimBackend be_dn;
  BackendBChain chain_dn(be_dn, dn.b(), dn.b_inv());
  g = g0;
  be_dn.reset_stats();
  chain_dn.wrap(g, v, true);
  be_dn.synchronize();
  const double dense_seconds = be_dn.stats().compute_seconds;

  EXPECT_LT(cb_seconds, dense_seconds);
  EXPECT_GT(cb_seconds, 0.0);
}

}  // namespace
}  // namespace dqmc::backend
