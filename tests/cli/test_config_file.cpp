#include "cli/config_file.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dqmc::cli {
namespace {

TEST(ConfigFile, ParsesKeysValuesAndComments) {
  ConfigFile cfg = ConfigFile::parse(
      "# a comment line\n"
      "lx = 8\n"
      "beta = 5.5   # trailing comment\n"
      "\n"
      "algorithm = qrp\n");
  EXPECT_TRUE(cfg.has("lx"));
  EXPECT_EQ(cfg.get_long("lx", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("beta", 0.0), 5.5);
  EXPECT_EQ(cfg.get("algorithm", ""), "qrp");
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_EQ(cfg.get_long("missing", 42), 42);
}

TEST(ConfigFile, LaterDuplicatesWin) {
  ConfigFile cfg = ConfigFile::parse("u = 2\nu = 6\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("u", 0.0), 6.0);
}

TEST(ConfigFile, MalformedLinesThrow) {
  EXPECT_THROW(ConfigFile::parse("just words\n"), InvalidArgument);
  EXPECT_THROW(ConfigFile::parse("= value\n"), InvalidArgument);
}

TEST(ConfigFile, TypeMismatchesThrow) {
  ConfigFile cfg = ConfigFile::parse("lx = eight\n");
  EXPECT_THROW(cfg.get_long("lx", 0), InvalidArgument);
  EXPECT_THROW(cfg.get_double("lx", 0.0), InvalidArgument);
}

TEST(SimulationConfigFrom, MapsAllKeys) {
  ConfigFile cfg = ConfigFile::parse(
      "lx = 6\nly = 4\nlayers = 2\n"
      "t = 1.5\ntperp = 0.5\nu = 3.0\nmu = 0.25\nbeta = 7.0\nslices = 70\n"
      "warmup = 11\nsweeps = 22\nmeasure_interval = 2\n"
      "measure_slice_interval = 3\nbins = 8\nseed = 77\n"
      "algorithm = qrp\ncluster_size = 7\ndelay_rank = 16\n"
      "backend = gpusim\n");
  core::SimulationConfig sim = simulation_config_from(cfg);
  EXPECT_EQ(sim.lx, 6);
  EXPECT_EQ(sim.ly, 4);
  EXPECT_EQ(sim.layers, 2);
  EXPECT_DOUBLE_EQ(sim.model.t, 1.5);
  EXPECT_DOUBLE_EQ(sim.model.t_perp, 0.5);
  EXPECT_DOUBLE_EQ(sim.model.u, 3.0);
  EXPECT_DOUBLE_EQ(sim.model.mu, 0.25);
  EXPECT_DOUBLE_EQ(sim.model.beta, 7.0);
  EXPECT_EQ(sim.model.slices, 70);
  EXPECT_EQ(sim.warmup_sweeps, 11);
  EXPECT_EQ(sim.measurement_sweeps, 22);
  EXPECT_EQ(sim.measure_interval, 2);
  EXPECT_EQ(sim.measure_slice_interval, 3);
  EXPECT_EQ(sim.bins, 8);
  EXPECT_EQ(sim.seed, 77u);
  EXPECT_EQ(sim.engine.algorithm, core::StratAlgorithm::kQRP);
  EXPECT_EQ(sim.engine.cluster_size, 7);
  EXPECT_EQ(sim.engine.delay_rank, 16);
  EXPECT_EQ(sim.engine.backend, backend::BackendKind::kGpuSim);
}

TEST(SimulationConfigFrom, BackendDefaultsToHost) {
  ConfigFile cfg = ConfigFile::parse("lx = 4\n");
  EXPECT_EQ(simulation_config_from(cfg).engine.backend,
            backend::BackendKind::kHost);
}

TEST(SimulationConfigFrom, DeprecatedGpuKeysSelectGpusim) {
  ConfigFile on = ConfigFile::parse("gpu_clustering = 1\n");
  EXPECT_EQ(simulation_config_from(on).engine.backend,
            backend::BackendKind::kGpuSim);
  ConfigFile off = ConfigFile::parse("gpu_clustering = 0\ngpu_wrapping = 0\n");
  EXPECT_EQ(simulation_config_from(off).engine.backend,
            backend::BackendKind::kHost);
  // An explicit backend key wins over the deprecated aliases.
  ConfigFile both = ConfigFile::parse("backend = host\ngpu_wrapping = 1\n");
  EXPECT_EQ(simulation_config_from(both).engine.backend,
            backend::BackendKind::kHost);
}

TEST(SimulationConfigFrom, BadBackendThrows) {
  ConfigFile cfg = ConfigFile::parse("backend = cuda\n");
  EXPECT_THROW(simulation_config_from(cfg), InvalidArgument);
}

TEST(SimulationConfigFrom, QuestAliasesWork) {
  ConfigFile cfg = ConfigFile::parse("L = 80\nnwarm = 5\nnpass = 9\nnorth = 12\n");
  core::SimulationConfig sim = simulation_config_from(cfg);
  EXPECT_EQ(sim.model.slices, 80);
  EXPECT_EQ(sim.warmup_sweeps, 5);
  EXPECT_EQ(sim.measurement_sweeps, 9);
  EXPECT_EQ(sim.engine.cluster_size, 12);
}

TEST(SimulationConfigFrom, UnknownKeyThrows) {
  ConfigFile cfg = ConfigFile::parse("banana = 3\n");
  EXPECT_THROW(simulation_config_from(cfg), InvalidArgument);
}

TEST(SimulationConfigFrom, BadAlgorithmThrows) {
  ConfigFile cfg = ConfigFile::parse("algorithm = magic\n");
  EXPECT_THROW(simulation_config_from(cfg), InvalidArgument);
}

TEST(SimulationConfigFrom, DefaultsAreSensible) {
  core::SimulationConfig sim = simulation_config_from(ConfigFile::parse(""));
  EXPECT_EQ(sim.lx, 4);
  EXPECT_EQ(sim.ly, 4);  // ly defaults to lx
  EXPECT_EQ(sim.engine.algorithm, core::StratAlgorithm::kPrePivot);
  EXPECT_EQ(sim.walker_batch, 0);  // batching is opt-in
}

TEST(SimulationConfigFrom, WalkerBatchKeys) {
  // `walkers` (the chain count) is a driver-level key: the parser accepts it
  // but it never lands in the SimulationConfig.
  ConfigFile cfg = ConfigFile::parse("walkers = 8\nwalker_batch = 4\n");
  core::SimulationConfig sim = simulation_config_from(cfg);
  EXPECT_EQ(sim.walker_batch, 4);
  EXPECT_EQ(cfg.get_long("walkers", 1), 8);
  EXPECT_THROW(
      simulation_config_from(ConfigFile::parse("walker_batch = -2\n")),
      InvalidArgument);
}

}  // namespace
}  // namespace dqmc::cli
