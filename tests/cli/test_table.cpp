#include "cli/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dqmc::cli {
namespace {

TEST(Table, AlignsColumnsAndSeparates) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.5"});
  const std::string s = t.str();
  // Header, separator, two rows.
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("------  -----"), std::string::npos);
  EXPECT_NE(s.find("longer  2.5"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.str());
}

TEST(Table, TooWideRowThrows) {
  Table t({"only"});
  EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(Table::pm(1.0, 0.25, 2), "1.00 +- 0.25");
}

TEST(AsciiHeatmap, MapsExtremesToRampEnds) {
  // 1x2 grid: min -> ' ', max -> '@'.
  std::string s = ascii_heatmap({0.0, 1.0}, 1, 2);
  EXPECT_EQ(s.substr(0, 4), "  @@");
}

TEST(AsciiHeatmap, SymmetricModeCentersZero) {
  // Values -1, 0, 1 with symmetric scaling: middle maps to mid-ramp.
  std::string s = ascii_heatmap({-1.0, 0.0, 1.0}, 1, 3);
  EXPECT_EQ(s[0], ' ');
  EXPECT_EQ(s[4], '@');
}

TEST(AsciiHeatmap, ConstantGridDoesNotDivideByZero) {
  EXPECT_NO_THROW(ascii_heatmap({2.0, 2.0, 2.0, 2.0}, 2, 2));
}

TEST(AsciiHeatmap, SizeMismatchThrows) {
  EXPECT_THROW(ascii_heatmap({1.0, 2.0}, 2, 2), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::cli
