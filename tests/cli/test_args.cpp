#include "cli/args.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dqmc::cli {
namespace {

Args make(std::initializer_list<const char*> argv,
          std::vector<std::string> allowed = {}) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data(), std::move(allowed));
}

TEST(Args, ParsesSpaceAndEqualsSyntax) {
  Args a = make({"prog", "--l", "8", "--beta=5.5"});
  EXPECT_EQ(a.get_long("l", 0), 8);
  EXPECT_DOUBLE_EQ(a.get_double("beta", 0.0), 5.5);
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, BareFlagIsTrue) {
  Args a = make({"prog", "--verbose", "--l", "4"});
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_FALSE(a.get_flag("quiet"));
  EXPECT_TRUE(a.get_flag("quiet", true));
  EXPECT_EQ(a.get_long("l", 0), 4);
}

TEST(Args, TrailingBareFlag) {
  Args a = make({"prog", "--progress"});
  EXPECT_TRUE(a.get_flag("progress"));
}

TEST(Args, UnknownOptionThrowsWhenAllowlisted) {
  EXPECT_THROW(make({"prog", "--bogus", "1"}, {"l", "beta"}), InvalidArgument);
  EXPECT_NO_THROW(make({"prog", "--l", "2"}, {"l", "beta"}));
}

TEST(Args, NonOptionTokenThrows) {
  EXPECT_THROW(make({"prog", "positional"}), InvalidArgument);
}

TEST(Args, TypeErrorsThrow) {
  Args a = make({"prog", "--l", "abc"});
  EXPECT_THROW(a.get_long("l", 0), InvalidArgument);
  EXPECT_THROW(a.get_double("l", 0.0), InvalidArgument);
}

TEST(Args, FallbacksWhenMissing) {
  Args a = make({"prog"});
  EXPECT_EQ(a.get("name", "dflt"), "dflt");
  EXPECT_EQ(a.get_long("n", 3), 3);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(a.has("n"));
}

}  // namespace
}  // namespace dqmc::cli
