// Walker-supervisor recovery tests: every fault class injected through the
// fail-point registry must recover onto the SAME trajectory — the
// determinism oracle is trajectory_hash equality (and exact measurement
// equality) against an unsupervised run of the identical config.
#include <gtest/gtest.h>

#include <string>

#include "backend/backend.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/health.h"

namespace dqmc {
namespace {

core::SimulationConfig small_config(
    backend::BackendKind kind = backend::BackendKind::kHost) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 11;
  return cfg;
}

core::SupervisorPolicy test_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 2;
  return policy;
}

/// The two runs must be the same Markov chain, bit for bit.
void expect_same_trajectory(const core::SimulationResults& a,
                            const core::SimulationResults& b) {
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
  EXPECT_EQ(a.measurements.density().mean, b.measurements.density().mean);
  EXPECT_EQ(a.measurements.density().error, b.measurements.density().error);
  EXPECT_EQ(a.measurements.double_occupancy().mean,
            b.measurements.double_occupancy().mean);
  EXPECT_EQ(a.measurements.average_sign().mean,
            b.measurements.average_sign().mean);
  EXPECT_EQ(a.sweep_stats.proposed, b.sweep_stats.proposed);
  EXPECT_EQ(a.sweep_stats.accepted, b.sweep_stats.accepted);
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
  void TearDown() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }

  core::SimulationResults clean_reference() {
    return core::run_simulation(small_config());
  }
};

TEST_F(SupervisorTest, CleanRunMatchesUnsupervised) {
  const core::SimulationResults plain = clean_reference();
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  expect_same_trajectory(plain, supervised);
  EXPECT_EQ(supervised.fault_report.faults, 0u);
  EXPECT_GT(supervised.fault_report.checkpoints, 0u);
  EXPECT_EQ(supervised.fault_report.final_backend, "host");
  EXPECT_FALSE(supervised.fault_report.degraded);
}

TEST_F(SupervisorTest, RecoversDeviceFaultByRetry) {
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm("backend.enqueue", 50);
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  ASSERT_EQ(fault::failpoints().state("backend.enqueue").fired, 1u)
      << "injection never reached the armed hit; the test is vacuous";
  expect_same_trajectory(plain, supervised);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_GE(fr.faults, 1u);
  EXPECT_GE(fr.retries, 1u);
  EXPECT_GE(fr.restarts, 1u);
  ASSERT_FALSE(fr.events.empty());
  EXPECT_EQ(fr.events[0].fault_class, "device");
  EXPECT_EQ(fr.events[0].action, "retry");
  EXPECT_GT(fr.events[0].backoff_ms, 0.0);
}

TEST_F(SupervisorTest, ClassifiesGradedFaultAsNumerical) {
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm("graded.qr", 40);
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  ASSERT_EQ(fault::failpoints().state("graded.qr").fired, 1u);
  expect_same_trajectory(plain, supervised);
  ASSERT_FALSE(supervised.fault_report.events.empty());
  EXPECT_EQ(supervised.fault_report.events[0].site, "graded.qr");
  EXPECT_EQ(supervised.fault_report.events[0].fault_class, "numerical");
}

TEST_F(SupervisorTest, RecoversAsyncGpusimStreamFault) {
  // The stream-thread fault is sticky and surfaces from wait_idle() — the
  // supervisor still sees an InjectedFault and replays the segment; the
  // recovered gpusim trajectory matches the clean HOST one (backend
  // parity composes with recovery).
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm("gpusim.stream", 30);
  const core::SimulationResults supervised = core::run_supervised_simulation(
      small_config(backend::BackendKind::kGpuSim), test_policy());
  ASSERT_EQ(fault::failpoints().state("gpusim.stream").fired, 1u);
  expect_same_trajectory(plain, supervised);
  EXPECT_EQ(supervised.fault_report.final_backend, "gpusim");
  EXPECT_FALSE(supervised.fault_report.degraded);
  ASSERT_FALSE(supervised.fault_report.events.empty());
  EXPECT_EQ(supervised.fault_report.events[0].site, "gpusim.stream");
  EXPECT_EQ(supervised.fault_report.events[0].fault_class, "device");
}

TEST_F(SupervisorTest, DegradesGpusimToHostMidRun) {
  // A persistent gpusim-only fault exhausts the retries, then the chain
  // degrades to the host backend and FINISHES — on the same trajectory.
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm_spec("backend.enqueue.gpusim:10+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  const core::SimulationResults supervised = core::run_supervised_simulation(
      small_config(backend::BackendKind::kGpuSim), policy);
  expect_same_trajectory(plain, supervised);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_TRUE(fr.degraded);
  EXPECT_EQ(fr.degradations, 1u);
  EXPECT_EQ(fr.final_backend, "host");
  EXPECT_EQ(supervised.backend_name, "host");
  bool saw_degrade = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "degrade") saw_degrade = true;
  }
  EXPECT_TRUE(saw_degrade);
}

TEST_F(SupervisorTest, DegradationCanBeDisallowed) {
  fault::failpoints().arm_spec("backend.enqueue.gpusim:10+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  policy.allow_degrade = false;
  EXPECT_THROW(core::run_supervised_simulation(
                   small_config(backend::BackendKind::kGpuSim), policy),
               fault::InjectedFault);
}

TEST_F(SupervisorTest, RetriesCheckpointSaveOnce) {
  // Hit 1 is the initial recovery checkpoint; hit 2 is the first segment's
  // — it fails once, the immediate retry succeeds, the run is unaffected.
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm("checkpoint.save", 2);
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  ASSERT_EQ(fault::failpoints().state("checkpoint.save").fired, 1u);
  expect_same_trajectory(plain, supervised);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_EQ(fr.checkpoint_faults, 1u);
  EXPECT_EQ(fr.restarts, 0u);
  ASSERT_FALSE(fr.events.empty());
  EXPECT_EQ(fr.events[0].action, "retry-checkpoint");
  EXPECT_EQ(fr.events[0].fault_class, "io");
}

TEST_F(SupervisorTest, SkipsCheckpointThenRestoresFromOlderOne) {
  // Both attempts of the first segment checkpoint fail -> the segment still
  // commits ("skip-checkpoint", previous checkpoint kept). A later device
  // fault then forces a restore from that OLDER checkpoint: the supervisor
  // fast-forwards the already-committed sweeps without re-measuring, so
  // both the trajectory and the sample set stay exact.
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm_spec("checkpoint.save:2:2,backend.enqueue:150");
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  ASSERT_EQ(fault::failpoints().state("checkpoint.save").fired, 2u);
  ASSERT_EQ(fault::failpoints().state("backend.enqueue").fired, 1u);
  expect_same_trajectory(plain, supervised);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_EQ(fr.checkpoint_faults, 2u);
  EXPECT_GE(fr.restarts, 1u);
  bool saw_skip = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "skip-checkpoint") saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
}

TEST_F(SupervisorTest, RecoversInjectedHealthTrip) {
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm("supervisor.health", 1);
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), test_policy());
  ASSERT_EQ(fault::failpoints().state("supervisor.health").fired, 1u);
  expect_same_trajectory(plain, supervised);
  EXPECT_EQ(supervised.fault_report.health_trips, 1u);
  ASSERT_FALSE(supervised.fault_report.events.empty());
  EXPECT_EQ(supervised.fault_report.events[0].fault_class, "health");
  EXPECT_EQ(supervised.fault_report.events[0].action, "retry");
}

TEST_F(SupervisorTest, DisablesHealthGateAfterPersistentTrips) {
  // A trip that deterministically re-trips is a real anomaly, not a
  // transient: after max_retries the supervisor degrades the MONITORING
  // (disable-health) and lets the physics continue.
  const core::SimulationResults plain = clean_reference();
  fault::failpoints().arm_spec("supervisor.health:1+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), policy);
  expect_same_trajectory(plain, supervised);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_EQ(fr.health_trips, 2u);  // one retried, one disabled the gate
  bool saw_disable = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "disable-health") saw_disable = true;
  }
  EXPECT_TRUE(saw_disable);
}

TEST_F(SupervisorTest, TripOnHealthGateUsesRealMonitor) {
  // With trip_on_health opted in and an impossible sortedness threshold,
  // every segment raises real violations: the supervisor trips, retries,
  // then disables the gate — and the trajectory is still untouched (health
  // monitoring never perturbs the Markov chain).
  const core::SimulationResults plain = clean_reference();
  const obs::HealthThresholds saved = obs::health().thresholds();
  obs::HealthThresholds impossible = saved;
  impossible.min_sortedness = 1.5;  // sortedness is in [0, 1]: always trips
  obs::health().set_thresholds(impossible);
  obs::health().set_enabled(true);

  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  policy.trip_on_health = true;
  const core::SimulationResults supervised =
      core::run_supervised_simulation(small_config(), policy);

  obs::health().set_enabled(false);
  obs::health().set_thresholds(saved);
  obs::health().reset();

  expect_same_trajectory(plain, supervised);
  EXPECT_GE(supervised.fault_report.health_trips, 2u);
  bool saw_disable = false;
  for (const fault::FaultEvent& ev : supervised.fault_report.events) {
    if (ev.action == "disable-health") saw_disable = true;
  }
  EXPECT_TRUE(saw_disable);
}

TEST_F(SupervisorTest, AbortsWhenRecoveryIsExhausted) {
  // Host backend has nowhere to degrade: a persistent device fault aborts
  // with the original exception after max_retries, and the abort is on the
  // event record.
  fault::failpoints().arm_spec("backend.enqueue:5+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  EXPECT_THROW(core::run_supervised_simulation(small_config(), policy),
               fault::InjectedFault);
}

TEST_F(SupervisorTest, ParallelChainsRecoverToMergedCleanHash) {
  // The registry is process-global, so with two concurrent chains WHICH
  // chain absorbs each armed hit is a race — but every recovery is bitwise,
  // so the merged trajectory hash is still exactly the clean one.
  const core::SimulationConfig cfg = small_config();
  const core::SimulationResults plain = core::run_parallel_simulation(cfg, 2);
  fault::failpoints().arm("backend.enqueue", 20, 4);
  // All four fires could race onto ONE chain's consecutive replays; give
  // the ladder enough retries that no interleaving reaches the abort rung.
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 10;
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, policy, 2);
  EXPECT_EQ(plain.trajectory_hash, supervised.trajectory_hash);
  EXPECT_EQ(plain.measurements.density().mean,
            supervised.measurements.density().mean);
  EXPECT_EQ(fault::failpoints().state("backend.enqueue").fired, 4u);
  EXPECT_GE(supervised.fault_report.faults, 1u);
  EXPECT_GT(supervised.fault_report.checkpoints, 0u);
}

}  // namespace
}  // namespace dqmc
