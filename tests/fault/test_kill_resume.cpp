// Kill-and-resume determinism suite (the PR's acceptance oracle): a chain
// interrupted at an ARBITRARY point — any sweep boundary, or mid-sweep at a
// non-cluster-aligned slice — and resumed from its checkpoint must replay
// the exact trajectory of an undisturbed run, bit for bit, on both
// backends and across several (N, L, k) points.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dqmc/checkpoint.h"
#include "dqmc/engine.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "linalg/norms.h"

namespace dqmc::core {
namespace {

using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;

struct KillPoint {
  idx l;       // lattice edge (N = l*l)
  idx slices;  // L
  idx k;       // cluster size
  backend::BackendKind backend;
};

constexpr idx kTotalSweeps = 6;

ModelParams params_for(const KillPoint& pt) {
  ModelParams p;
  p.u = 4.0;
  p.beta = 0.125 * static_cast<double>(pt.slices);
  p.slices = pt.slices;
  return p;
}

EngineConfig config_for(const KillPoint& pt) {
  EngineConfig cfg;
  cfg.cluster_size = pt.k;
  cfg.delay_rank = 8;
  cfg.backend = pt.backend;
  return cfg;
}

void expect_bitwise_equal(DqmcEngine& ref, DqmcEngine& resumed,
                          const std::string& where) {
  ASSERT_EQ(ref.config_sign(), resumed.config_sign()) << where;
  for (idx l = 0; l < ref.slices(); ++l) {
    for (idx i = 0; i < ref.n(); ++i) {
      ASSERT_EQ(ref.field()(l, i), resumed.field()(l, i))
          << where << ": field differs at slice " << l << " site " << i;
    }
  }
  for (Spin s : hubbard::kSpins) {
    EXPECT_EQ(linalg::relative_difference(ref.greens(s), resumed.greens(s)),
              0.0)
        << where;
  }
  EXPECT_EQ(trajectory_hash(ref), trajectory_hash(resumed)) << where;
}

/// Thrown from the slice hook to abandon a sweep mid-flight — the "kill".
struct KillSignal {};

class KillResume : public ::testing::TestWithParam<KillPoint> {
 protected:
  void SetUp() override { fault::failpoints().disarm_all(); }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

INSTANTIATE_TEST_SUITE_P(
    Points, KillResume,
    ::testing::Values(
        KillPoint{2, 8, 4, backend::BackendKind::kHost},
        KillPoint{2, 8, 4, backend::BackendKind::kGpuSim},
        KillPoint{4, 12, 5, backend::BackendKind::kHost},   // ragged tail
        KillPoint{4, 12, 5, backend::BackendKind::kGpuSim},
        KillPoint{4, 20, 10, backend::BackendKind::kHost},  // paper's k=10
        KillPoint{3, 10, 4, backend::BackendKind::kGpuSim}),
    [](const auto& info) {
      return "l" + std::to_string(info.param.l) + "_L" +
             std::to_string(info.param.slices) + "_k" +
             std::to_string(info.param.k) + "_" +
             std::string(backend::backend_kind_name(info.param.backend));
    });

TEST_P(KillResume, SweepBoundaryKillIsBitwise) {
  const KillPoint pt = GetParam();
  Lattice lat(pt.l, pt.l);

  // The undisturbed reference trajectory.
  DqmcEngine ref(lat, params_for(pt), config_for(pt), 41);
  ref.initialize();
  for (idx g = 0; g < kTotalSweeps; ++g) ref.sweep();

  for (idx kill_at : {idx{1}, idx{3}, idx{5}}) {
    DqmcEngine victim(lat, params_for(pt), config_for(pt), 41);
    victim.initialize();
    for (idx g = 0; g < kill_at; ++g) victim.sweep();
    std::stringstream ckpt;
    save_checkpoint(ckpt, victim);

    // A fresh process would construct a brand-new engine; seed 0 proves the
    // checkpoint carries the whole Markov state.
    DqmcEngine resumed(lat, params_for(pt), config_for(pt), 0);
    load_checkpoint(ckpt, resumed);
    for (idx g = kill_at; g < kTotalSweeps; ++g) resumed.sweep();
    expect_bitwise_equal(ref, resumed,
                         "killed at sweep " + std::to_string(kill_at));
  }
}

TEST_P(KillResume, MidSweepKillAtUnalignedSliceIsBitwise) {
  const KillPoint pt = GetParam();
  Lattice lat(pt.l, pt.l);

  DqmcEngine ref(lat, params_for(pt), config_for(pt), 59);
  ref.initialize();
  for (idx g = 0; g < kTotalSweeps; ++g) ref.sweep();

  // Kill inside sweep #2 right after slice k finishes: the resume position
  // k+1 is NOT a cluster boundary, so the v2 checkpoint's restored Green's
  // functions (not a fresh stratification) are what keeps this bitwise.
  const idx kill_full = 2;
  const idx kill_slice = pt.k;  // next_slice = k+1, mid-cluster
  ASSERT_LT(kill_slice + 1, pt.slices);
  ASSERT_NE((kill_slice + 1) % pt.k, idx{0});

  DqmcEngine victim(lat, params_for(pt), config_for(pt), 59);
  victim.initialize();
  for (idx g = 0; g < kill_full; ++g) victim.sweep();
  std::stringstream ckpt;
  try {
    victim.sweep([&](idx slice) {
      if (slice == kill_slice) {
        save_checkpoint_mid_sweep(ckpt, victim, slice + 1);
        throw KillSignal{};
      }
    });
    FAIL() << "kill hook never fired";
  } catch (const KillSignal&) {
  }

  DqmcEngine resumed(lat, params_for(pt), config_for(pt), 0);
  load_checkpoint(ckpt, resumed);
  ASSERT_TRUE(resumed.pending_resume_slice().has_value());
  EXPECT_EQ(*resumed.pending_resume_slice(), kill_slice + 1);
  // The first sweep() finishes the interrupted sweep; then run the rest.
  for (idx g = kill_full; g < kTotalSweeps; ++g) resumed.sweep();
  expect_bitwise_equal(ref, resumed, "mid-sweep kill");
}

TEST_P(KillResume, SupervisedInjectedKillMatchesUnsupervisedRun) {
  // End-to-end flavor: the same interruption driven through the fail-point
  // registry and the walker supervisor's restart path, compared against the
  // plain run_simulation trajectory hash.
  const KillPoint pt = GetParam();
  SimulationConfig cfg;
  cfg.lx = cfg.ly = pt.l;
  cfg.model = params_for(pt);
  cfg.engine = config_for(pt);
  cfg.warmup_sweeps = 2;
  cfg.measurement_sweeps = 4;
  cfg.bins = 2;
  cfg.seed = 23;

  const SimulationResults plain = run_simulation(cfg);

  fault::failpoints().disarm_all();
  fault::failpoints().arm("backend.enqueue", 60);
  SupervisorPolicy policy;
  policy.checkpoint_interval = 2;
  policy.max_retries = 2;
  const SimulationResults supervised =
      run_supervised_simulation(cfg, policy);
  ASSERT_EQ(fault::failpoints().state("backend.enqueue").fired, 1u);
  EXPECT_EQ(plain.trajectory_hash, supervised.trajectory_hash);
  EXPECT_EQ(plain.measurements.density().mean,
            supervised.measurements.density().mean);
  EXPECT_GE(supervised.fault_report.restarts, 1u);
}

}  // namespace
}  // namespace dqmc::core
