// Compiled with -DDQMC_NO_FAILPOINTS (see tests/fault/CMakeLists.txt): in
// this translation unit the fail-point macros must be fully compiled out —
// no registry probe, no hit bookkeeping, no way to fire — even while the
// registry itself is armed. This is the "zero cost when compiled out" half
// of the contract; the "one relaxed load when disarmed" half is measured by
// bench/obs_overhead.
#include <gtest/gtest.h>

#include "fault/failpoint.h"

#ifndef DQMC_NO_FAILPOINTS
#error "this test must be compiled with DQMC_NO_FAILPOINTS"
#endif

namespace dqmc::fault {
namespace {

TEST(FailpointCompileOut, MacrosAreInertEvenWhenArmed) {
  failpoints().disarm_all();
  failpoints().arm("compileout.site", 1, FailPointRegistry::kPersistent);
  ASSERT_TRUE(failpoints().any_armed());

  // Would throw on every pass if the macro still reached the registry.
  for (int i = 0; i < 4; ++i) {
    DQMC_FAILPOINT("compileout.site");
  }
  EXPECT_FALSE(DQMC_FAILPOINT_FIRE("compileout.site"));

  // Not even the hit counter moved: the site was never probed.
  const FailPointState st = failpoints().state("compileout.site");
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.fired, 0u);
  EXPECT_EQ(failpoints().total_fired(), 0u);
  failpoints().disarm_all();
}

TEST(FailpointCompileOut, FireMacroIsAConstantExpression) {
  // The disabled DQMC_FAILPOINT_FIRE must be usable where the enabled one
  // is (boolean contexts) and always false.
  if (DQMC_FAILPOINT_FIRE("compileout.other")) {
    FAIL() << "compiled-out fail point fired";
  }
  SUCCEED();
}

}  // namespace
}  // namespace dqmc::fault
