// The precision-degrade rung of the recovery ladder: a health trip that
// exhausts its retries while the run is on fp32 wraps degrades the
// PRECISION POLICY back to fp64 (rebuild + restore + replay) before the
// ladder ever considers disabling the health gate. Because the trip fires
// in the first segment — before anything commits — the degraded run replays
// from sweep zero entirely in fp64, so its trajectory must be bitwise the
// clean fp64 one: the recovery genuinely un-narrows the physics.
#include <gtest/gtest.h>

#include <string>

#include "backend/backend.h"
#include "dqmc/run_manifest.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/health.h"

namespace dqmc {
namespace {

core::SimulationConfig fp32_config() {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.precision = backend::Precision::kFp32;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 23;
  return cfg;
}

core::SupervisorPolicy trip_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 1;
  return policy;
}

class PrecisionDegrade : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
  void TearDown() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
};

TEST_F(PrecisionDegrade, PersistentHealthTripDegradesFp32ToFp64) {
  // Clean fp64 reference of the same configuration.
  core::SimulationConfig fp64_cfg = fp32_config();
  fp64_cfg.engine.precision = backend::Precision::kFp64;
  const core::SimulationResults clean = core::run_simulation(fp64_cfg);

  // Persistent injected trip: retry (1) -> degrade-precision (2) ->
  // disable-health (3); the gate then stays silent and the run finishes.
  fault::failpoints().arm_spec("supervisor.health:1+");
  const core::SimulationResults degraded =
      core::run_supervised_simulation(fp32_config(), trip_policy());

  const fault::FaultReport& fr = degraded.fault_report;
  EXPECT_EQ(fr.health_trips, 3u);
  EXPECT_EQ(fr.precision_degradations, 1u);
  bool saw_precision = false, saw_disable = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "degrade-precision") {
      saw_precision = true;
      // The precision rung must come BEFORE monitoring is given up on.
      EXPECT_FALSE(saw_disable);
    }
    if (ev.action == "disable-health") saw_disable = true;
  }
  EXPECT_TRUE(saw_precision);
  EXPECT_TRUE(saw_disable);

  // The trip fired before the first commit, so the whole run replayed on
  // fp64 from sweep zero: bitwise the clean fp64 trajectory.
  EXPECT_EQ(degraded.trajectory_hash, clean.trajectory_hash);
  EXPECT_EQ(degraded.measurements.density().mean,
            clean.measurements.density().mean);

  // The backend was never the problem: no gpusim->host degradation.
  EXPECT_EQ(fr.degradations, 0u);
  EXPECT_FALSE(fr.degraded);

  // The counter reaches the golden manifest (conditional key).
  const std::string golden = core::golden_manifest(degraded).dump(2);
  EXPECT_NE(golden.find("\"precision_degradations\": 1"), std::string::npos);
  EXPECT_NE(golden.find("\"precision\": \"fp32\""), std::string::npos);
}

TEST_F(PrecisionDegrade, Fp64RunSkipsThePrecisionRung) {
  // Already-fp64 runs have no precision to give back: the ladder goes
  // straight to disable-health, and the conditional manifest key stays out.
  core::SimulationConfig cfg = fp32_config();
  cfg.engine.precision = backend::Precision::kFp64;
  fault::failpoints().arm_spec("supervisor.health:1+");
  const core::SimulationResults res =
      core::run_supervised_simulation(cfg, trip_policy());
  EXPECT_EQ(res.fault_report.precision_degradations, 0u);
  bool saw_disable = false;
  for (const fault::FaultEvent& ev : res.fault_report.events) {
    EXPECT_NE(ev.action, "degrade-precision");
    if (ev.action == "disable-health") saw_disable = true;
  }
  EXPECT_TRUE(saw_disable);
  const std::string golden = core::golden_manifest(res).dump(2);
  EXPECT_EQ(golden.find("precision_degradations"), std::string::npos);
}

TEST_F(PrecisionDegrade, CrowdDegradesPrecisionCrowdWide) {
  // Lockstep crowd: one shared backend, one precision policy — a single
  // degrade-precision recovery covers every walker, and the replay puts
  // the whole crowd on the clean fp64 trajectory.
  core::SimulationConfig cfg = fp32_config();
  cfg.walker_batch = 2;
  core::SimulationConfig fp64_cfg = cfg;
  fp64_cfg.engine.precision = backend::Precision::kFp64;
  const core::SimulationResults clean =
      core::run_supervised_parallel(fp64_cfg, trip_policy(), 2);

  fault::failpoints().arm_spec("supervisor.health:1+");
  const core::SimulationResults degraded =
      core::run_supervised_parallel(cfg, trip_policy(), 2);

  EXPECT_EQ(degraded.fault_report.precision_degradations, 1u);
  EXPECT_EQ(degraded.trajectory_hash, clean.trajectory_hash);
  EXPECT_EQ(degraded.measurements.density().mean,
            clean.measurements.density().mean);
}

}  // namespace
}  // namespace dqmc
