// Unit tests for the deterministic fail-point registry (src/fault):
// trigger-on-Nth-hit semantics, the spec grammar, classification, and the
// zero-bookkeeping contract for sites nobody armed.
#include <gtest/gtest.h>

#include "fault/failpoint.h"

namespace dqmc::fault {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoints().disarm_all(); }
  void TearDown() override { failpoints().disarm_all(); }
};

TEST_F(FailPointTest, FiresExactlyOnNthHit) {
  failpoints().arm("t.site", 3);
  EXPECT_TRUE(failpoints().any_armed());
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  try {
    failpoints().hit("t.site");
    FAIL() << "third hit must fire";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "t.site");
    EXPECT_EQ(e.hit(), 3u);
    EXPECT_EQ(e.fault_class(), FaultClass::kDeviceFault);
  }
  // Exhausted: the zero-overhead fast path is restored.
  EXPECT_FALSE(failpoints().any_armed());
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  const FailPointState st = failpoints().state("t.site");
  EXPECT_EQ(st.fired, 1u);
  EXPECT_FALSE(st.armed);
}

TEST_F(FailPointTest, WindowFiresConsecutiveHits) {
  failpoints().arm("t.site", 2, 2);  // hits 2 and 3
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  EXPECT_THROW(failpoints().hit("t.site"), InjectedFault);
  EXPECT_THROW(failpoints().hit("t.site"), InjectedFault);
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  EXPECT_EQ(failpoints().state("t.site").fired, 2u);
}

TEST_F(FailPointTest, PersistentNeverExhausts) {
  failpoints().arm("t.site", 2, FailPointRegistry::kPersistent);
  EXPECT_NO_THROW(failpoints().hit("t.site"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(failpoints().hit("t.site"), InjectedFault);
  }
  EXPECT_TRUE(failpoints().any_armed());
}

TEST_F(FailPointTest, SpecGrammar) {
  failpoints().arm_spec(" a.x:3 , b.y:1+ ,c.z:2:4 ");
  EXPECT_EQ(failpoints().state("a.x").trigger_at, 3u);
  EXPECT_EQ(failpoints().state("a.x").fire_count, 1u);
  EXPECT_EQ(failpoints().state("b.y").fire_count,
            FailPointRegistry::kPersistent);
  EXPECT_EQ(failpoints().state("c.z").trigger_at, 2u);
  EXPECT_EQ(failpoints().state("c.z").fire_count, 4u);
  EXPECT_EQ(failpoints().sites().size(), 3u);

  EXPECT_THROW(failpoints().arm_spec("nocolon"), InvalidArgument);
  EXPECT_THROW(failpoints().arm_spec("a:xyz"), InvalidArgument);
  EXPECT_THROW(failpoints().arm_spec(":3"), InvalidArgument);
  EXPECT_NO_THROW(failpoints().arm_spec(""));  // empty spec is a no-op
}

TEST_F(FailPointTest, ClassificationByPrefix) {
  EXPECT_EQ(fault_class_for_site("checkpoint.save"), FaultClass::kIoError);
  EXPECT_EQ(fault_class_for_site("checkpoint.load"), FaultClass::kIoError);
  EXPECT_EQ(fault_class_for_site("graded.qr"), FaultClass::kNumericalFault);
  EXPECT_EQ(fault_class_for_site("strat.push"), FaultClass::kNumericalFault);
  EXPECT_EQ(fault_class_for_site("supervisor.health"),
            FaultClass::kHealthTrip);
  EXPECT_EQ(fault_class_for_site("backend.enqueue"),
            FaultClass::kDeviceFault);
  EXPECT_EQ(fault_class_for_site("gpusim.stream"), FaultClass::kDeviceFault);
}

TEST_F(FailPointTest, NonThrowingFireReportsHit) {
  failpoints().arm("t.site", 2);
  std::uint64_t hit = 0;
  EXPECT_FALSE(failpoints().fire("t.site", &hit));
  EXPECT_TRUE(failpoints().fire("t.site", &hit));
  EXPECT_EQ(hit, 2u);
  EXPECT_EQ(failpoints().total_fired(), 1u);
}

TEST_F(FailPointTest, UnarmedSitesGetNoBookkeeping) {
  // Hits on sites nobody armed are not tracked: the registry map stays
  // empty, so arbitrary production site names cannot grow memory.
  EXPECT_NO_THROW(failpoints().hit("never.armed"));
  EXPECT_EQ(failpoints().state("never.armed").hits, 0u);
  EXPECT_TRUE(failpoints().sites().empty());
}

TEST_F(FailPointTest, MacroSkipsRegistryWhenNothingArmed) {
  // With nothing armed the macro must not even count the hit (it only
  // performs the relaxed any_armed() load).
  DQMC_FAILPOINT("t.macro");
  failpoints().arm("t.macro", 1);
  EXPECT_EQ(failpoints().state("t.macro").hits, 0u);
  EXPECT_THROW(DQMC_FAILPOINT("t.macro"), InjectedFault);
}

TEST_F(FailPointTest, DisarmRestoresFastPath) {
  failpoints().arm("t.a", 5);
  failpoints().arm("t.b", 5);
  failpoints().disarm("t.a");
  EXPECT_TRUE(failpoints().any_armed());
  failpoints().disarm("t.b");
  EXPECT_FALSE(failpoints().any_armed());
  EXPECT_NO_THROW(failpoints().disarm("t.missing"));
}

TEST_F(FailPointTest, RearmResetsCounters) {
  failpoints().arm("t.site", 1);
  EXPECT_THROW(failpoints().hit("t.site"), InjectedFault);
  failpoints().arm("t.site", 2);
  const FailPointState st = failpoints().state("t.site");
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.fired, 0u);
  EXPECT_TRUE(st.armed);
}

}  // namespace
}  // namespace dqmc::fault
