// Supervised walker crowds (CrowdSupervisor): fault recovery in the batched
// lockstep path must keep every walker — the faulting one AND its
// batchmates — on the bitwise trajectory of a fault-free run. The
// walker-by-walker oracle is the FNV mix of each chain's SOLO unsupervised
// hash: the fold is chain-order sensitive, so a merged hash that matches it
// certifies that no batchmate's trajectory was perturbed by recovery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "dqmc/walker_batch.h"
#include "fault/failpoint.h"
#include "obs/health.h"

namespace dqmc {
namespace {

using linalg::idx;

core::SimulationConfig crowd_config(
    backend::BackendKind kind = backend::BackendKind::kHost) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 31;
  cfg.walker_batch = 3;  // one crowd of three walkers
  return cfg;
}

core::SupervisorPolicy test_policy() {
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 3;
  policy.max_retries = 2;
  return policy;
}

/// Each chain run solo (unbatched, unsupervised), hashes mixed in chain
/// order — what the supervised crowd's merged hash must reproduce exactly.
std::uint64_t solo_mixed_hash(const core::SimulationConfig& cfg, idx chains) {
  std::uint64_t acc = 0;
  for (idx c = 0; c < chains; ++c) {
    core::SimulationConfig chain = cfg;
    chain.walker_batch = 0;
    chain.seed = cfg.seed + static_cast<std::uint64_t>(c);
    acc = core::mix_chain_hash(acc,
                               core::run_simulation(chain).trajectory_hash);
  }
  return acc;
}

class BatchFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
  void TearDown() override {
    fault::failpoints().disarm_all();
    obs::health().set_enabled(false);
    obs::health().reset();
  }
};

TEST_F(BatchFaultTest, CleanSupervisedCrowdMatchesSoloChains) {
  const core::SimulationConfig cfg = crowd_config();
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, test_policy(), 3);
  EXPECT_EQ(supervised.trajectory_hash, solo_mixed_hash(cfg, 3));
  EXPECT_EQ(supervised.batch_walkers, 3);
  EXPECT_EQ(supervised.batch_crowds, 1);
  EXPECT_EQ(supervised.fault_report.faults, 0u);
  EXPECT_GT(supervised.fault_report.checkpoints, 0u);
  // Lockstep recovery points: checkpoints always land in whole-crowd sets.
  EXPECT_EQ(supervised.fault_report.checkpoints % 3, 0u);
}

TEST_F(BatchFaultTest, KillAndResumeLeavesBatchmatesUnchanged) {
  // One walker's wrap is killed mid-segment ("batch.wrap" fires per walker
  // in walker order, so hit 30 lands on a specific walker of the crowd).
  // The crowd restores from its lockstep checkpoints and replays — and the
  // merged hash still equals the solo per-chain mix, walker by walker.
  const core::SimulationConfig cfg = crowd_config();
  const core::SimulationResults plain = core::run_parallel_simulation(cfg, 3);
  fault::failpoints().arm("batch.wrap", 30);
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, test_policy(), 3);
  ASSERT_EQ(fault::failpoints().state("batch.wrap").fired, 1u);

  EXPECT_EQ(supervised.trajectory_hash, solo_mixed_hash(cfg, 3));
  EXPECT_EQ(supervised.trajectory_hash, plain.trajectory_hash);
  EXPECT_EQ(supervised.measurements.density().mean,
            plain.measurements.density().mean);
  EXPECT_EQ(supervised.measurements.average_sign().mean,
            plain.measurements.average_sign().mean);
  EXPECT_EQ(supervised.sweep_stats.proposed, plain.sweep_stats.proposed);
  EXPECT_EQ(supervised.sweep_stats.accepted, plain.sweep_stats.accepted);

  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_GE(fr.faults, 1u);
  EXPECT_GE(fr.retries, 1u);
  EXPECT_GE(fr.restarts, 1u);
  ASSERT_FALSE(fr.events.empty());
  EXPECT_EQ(fr.events[0].site, "batch.wrap");
  EXPECT_EQ(fr.events[0].fault_class, "device");
  EXPECT_EQ(fr.events[0].action, "retry");
}

TEST_F(BatchFaultTest, PersistentGpusimFaultDegradesWholeCrowd) {
  // A persistent gpusim-only enqueue fault exhausts the retries; the crowd
  // shares ONE backend, so there is exactly one degradation and all three
  // walkers finish on the host — still on their solo trajectories.
  const core::SimulationConfig cfg =
      crowd_config(backend::BackendKind::kGpuSim);
  // Reference BEFORE arming — the persistent fail point would kill the
  // unsupervised solo runs too.
  const std::uint64_t expected = solo_mixed_hash(cfg, 3);
  fault::failpoints().arm_spec("backend.enqueue.gpusim:10+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, policy, 3);

  EXPECT_EQ(supervised.trajectory_hash, expected);
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_TRUE(fr.degraded);
  EXPECT_EQ(fr.degradations, 1u);
  EXPECT_EQ(fr.final_backend, "host");
  EXPECT_EQ(supervised.backend_name, "host");
  bool saw_degrade = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "degrade") saw_degrade = true;
  }
  EXPECT_TRUE(saw_degrade);
}

TEST_F(BatchFaultTest, CheckpointFaultSkipsWholeCrowdCheckpoint) {
  // Hits 1-3 are the initial crowd checkpoint; hits 4-5 are walker 0's two
  // attempts at the first segment's save. Both fail -> the WHOLE crowd's
  // checkpoint is skipped (previous lockstep set kept) and the run is
  // otherwise untouched.
  const core::SimulationConfig cfg = crowd_config();
  fault::failpoints().arm_spec("checkpoint.save:4:2");
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, test_policy(), 3);
  ASSERT_EQ(fault::failpoints().state("checkpoint.save").fired, 2u);

  EXPECT_EQ(supervised.trajectory_hash, solo_mixed_hash(cfg, 3));
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_EQ(fr.checkpoint_faults, 2u);
  EXPECT_EQ(fr.restarts, 0u);
  EXPECT_EQ(fr.checkpoints % 3, 0u);
  bool saw_skip = false;
  for (const fault::FaultEvent& ev : fr.events) {
    if (ev.action == "skip-checkpoint") saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
}

TEST_F(BatchFaultTest, RestoreAfterSkipUsesOlderLockstepPoint) {
  // The first segment's crowd checkpoint is skipped, then a walker fault in
  // the SECOND segment forces a restore from the older (initial) lockstep
  // set: the supervisor fast-forwards the committed sweeps without
  // re-measuring, so both the trajectories and the sample set stay exact.
  const core::SimulationConfig cfg = crowd_config();
  fault::failpoints().arm_spec("checkpoint.save:4:2,batch.wrap:100");
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, test_policy(), 3);
  ASSERT_EQ(fault::failpoints().state("checkpoint.save").fired, 2u);
  ASSERT_EQ(fault::failpoints().state("batch.wrap").fired, 1u);

  EXPECT_EQ(supervised.trajectory_hash, solo_mixed_hash(cfg, 3));
  const fault::FaultReport& fr = supervised.fault_report;
  EXPECT_EQ(fr.checkpoint_faults, 2u);
  EXPECT_GE(fr.restarts, 1u);
}

TEST_F(BatchFaultTest, HealthTripDisablesGateCrowdWide) {
  const core::SimulationConfig cfg = crowd_config();
  fault::failpoints().arm_spec("supervisor.health:1+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  const core::SimulationResults supervised =
      core::run_supervised_parallel(cfg, policy, 3);
  EXPECT_EQ(supervised.trajectory_hash, solo_mixed_hash(cfg, 3));
  EXPECT_EQ(supervised.fault_report.health_trips, 2u);
  bool saw_disable = false;
  for (const fault::FaultEvent& ev : supervised.fault_report.events) {
    if (ev.action == "disable-health") saw_disable = true;
  }
  EXPECT_TRUE(saw_disable);
}

TEST_F(BatchFaultTest, AbortsWhenRecoveryIsExhaustedOnHost) {
  // Host has nowhere to degrade: a persistent walker fault aborts with the
  // walker-attributed exception after max_retries.
  const core::SimulationConfig cfg = crowd_config();
  fault::failpoints().arm_spec("batch.wrap:5+");
  core::SupervisorPolicy policy = test_policy();
  policy.max_retries = 1;
  EXPECT_THROW(core::run_supervised_parallel(cfg, policy, 3),
               core::WalkerFault);
}

}  // namespace
}  // namespace dqmc
