// Golden-manifest regression: the deterministic manifest subset
// (trajectory hash, sign, measurement bit patterns, fault counters) of two
// canonical fault scenarios is compared against committed fixtures in
// tests/fault/golden/. Any change to the Markov chain, the measurement
// pipeline, or the recovery bookkeeping shows up as a fixture diff.
//
// The comparison is structural-exact, numerically tolerant: every key, the
// key ORDER, and every non-numeric leaf must match byte-for-byte (schema
// drift is always a failure), while the codegen-sensitive numerics get a
// tolerance — {"bits","value"} measurement pairs are decoded back to
// doubles and compared to ~1e-9 relative, and trajectory_hash (a hash of
// full floating-point trajectories, so different under any codegen that
// reassociates an FMA) is checked for well-formedness only. This keeps the
// fixtures meaningful across compiler versions and -march settings where a
// raw byte-compare broke on last-ULP differences.
//
// Regenerate after an INTENDED behavior change with
//   DQMC_GOLDEN_REGEN=1 ctest -R GoldenManifest
// and commit the diff. Only the reference build configuration
// (DQMC_GOLDEN_REFERENCE_BUILD, set by tests/fault/CMakeLists.txt for the
// default preset's flags) diffs against the committed files; other builds
// (tsan/asan presets) render each scenario twice and byte-compare the two
// documents — the determinism half of the contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "backend/backend.h"
#include "dqmc/run_manifest.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/json.h"

#ifndef DQMC_GOLDEN_DIR
#error "DQMC_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace dqmc {
namespace {

core::SimulationConfig golden_config(backend::BackendKind kind) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 2026;
  return cfg;
}

std::string golden_path(const std::string& name) {
  return std::string(DQMC_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isxdigit(u) || std::isupper(u)) return false;
  }
  return true;
}

bool nearly_equal(double a, double b, double rel) {
  if (a == b) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel * scale;
}

/// A stable_double leaf as run_manifest.cpp emits it: exactly
/// {"bits": <16 hex>, "value": <%.9g rendering>}.
bool is_stable_double(const obs::Json& j) {
  return j.is_object() && j.members().size() == 2 &&
         j.members()[0].first == "bits" && j.members()[0].second.is_string() &&
         j.members()[1].first == "value" && j.members()[1].second.is_string();
}

/// Tolerance-aware structural diff (see the file comment): keys, key order,
/// array shapes and every other leaf compare exactly; stable_double pairs
/// compare as doubles to `kRelTol`; trajectory_hash only has to be a
/// well-formed 16-digit hex string on both sides.
bool equivalent(const obs::Json& got, const obs::Json& want,
                const std::string& path, std::string& why) {
  constexpr double kRelTol = 1e-9;
  if (got.type() != want.type()) {
    why = path + ": type mismatch";
    return false;
  }
  switch (got.type()) {
    case obs::Json::Type::kObject: {
      if (is_stable_double(got) && is_stable_double(want)) {
        const std::string& gb = got.at("bits").str();
        const std::string& wb = want.at("bits").str();
        if (!is_hex16(gb) || !is_hex16(wb)) {
          why = path + ": malformed bits field";
          return false;
        }
        const double gv =
            std::bit_cast<double>(std::stoull(gb, nullptr, 16));
        const double wv =
            std::bit_cast<double>(std::stoull(wb, nullptr, 16));
        if (!nearly_equal(gv, wv, kRelTol)) {
          why = path + ": " + std::to_string(gv) + " vs " +
                std::to_string(wv) + " (beyond rel tol)";
          return false;
        }
        // The human-readable rendering must agree with its own bits, not
        // with the other document's (the %.9g strings may differ in the
        // last digit exactly when the bits do).
        return true;
      }
      if (got.members().size() != want.members().size()) {
        why = path + ": member count " +
              std::to_string(got.members().size()) + " vs " +
              std::to_string(want.members().size());
        return false;
      }
      for (std::size_t i = 0; i < got.members().size(); ++i) {
        const auto& [gk, gval] = got.members()[i];
        const auto& [wk, wval] = want.members()[i];
        if (gk != wk) {
          why = path + ": key '" + gk + "' vs '" + wk + "' at position " +
                std::to_string(i);
          return false;
        }
        const std::string sub = path + "." + gk;
        if (gk == "trajectory_hash" && gval.is_string() &&
            wval.is_string()) {
          if (!is_hex16(gval.str()) || !is_hex16(wval.str())) {
            why = sub + ": not a 16-digit hex hash";
            return false;
          }
          continue;
        }
        if (!equivalent(gval, wval, sub, why)) return false;
      }
      return true;
    }
    case obs::Json::Type::kArray: {
      if (got.size() != want.size()) {
        why = path + ": array size mismatch";
        return false;
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (!equivalent(got[i], want[i],
                        path + "[" + std::to_string(i) + "]", why))
          return false;
      }
      return true;
    }
    case obs::Json::Type::kString:
      if (got.str() != want.str()) {
        why = path + ": '" + got.str() + "' vs '" + want.str() + "'";
        return false;
      }
      return true;
    case obs::Json::Type::kNumber:
      // Counters and config scalars are exact by construction; a drifted
      // count is a real behavior change, never codegen noise.
      if (got.number() != want.number()) {
        why = path + ": " + std::to_string(got.number()) + " vs " +
              std::to_string(want.number());
        return false;
      }
      return true;
    case obs::Json::Type::kBool:
      if (got.boolean() != want.boolean()) {
        why = path + ": bool mismatch";
        return false;
      }
      return true;
    case obs::Json::Type::kNull:
      return true;
  }
  why = path + ": unknown type";
  return false;
}

/// `scenario` must be self-contained (it re-arms its own fail points): the
/// non-reference path replays it to prove the rendered document is a pure
/// function of the configuration.
void check_against_golden(
    const std::function<core::SimulationResults()>& scenario,
    const std::string& name) {
  const std::string rendered =
      core::golden_manifest(scenario()).dump(2) + "\n";
#if defined(DQMC_GOLDEN_REFERENCE_BUILD)
  const std::string path = golden_path(name);
  if (std::getenv("DQMC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << path
      << " — run with DQMC_GOLDEN_REGEN=1 to create it";
  std::string why;
  EXPECT_TRUE(equivalent(obs::Json::parse(rendered),
                         obs::Json::parse(expected), "$", why))
      << "golden manifest drifted at " << why
      << "\nif the change is intended, regenerate with DQMC_GOLDEN_REGEN=1 "
         "and commit the fixture diff\nrendered:\n"
      << rendered;
#else
  // Non-reference codegen: the committed bytes do not apply, but the
  // document must still be exactly reproducible within this build.
  ASSERT_FALSE(read_file(golden_path(name)).empty())
      << "committed fixture " << name << " is missing from the tree";
  const std::string replay =
      core::golden_manifest(scenario()).dump(2) + "\n";
  EXPECT_EQ(rendered, replay)
      << "golden manifest is not deterministic across identical runs";
#endif
}

class GoldenManifest : public ::testing::Test {
 protected:
  void SetUp() override { fault::failpoints().disarm_all(); }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

TEST_F(GoldenManifest, HostRunWithRecoveredFaults) {
  // Scenario: host chain, one mid-run device fault (retried) and one
  // checkpoint write failure (retried) — every counter is deterministic.
  check_against_golden(
      [] {
        fault::failpoints().disarm_all();
        fault::failpoints().arm_spec("backend.enqueue:50,checkpoint.save:2");
        core::SupervisorPolicy policy;
        policy.checkpoint_interval = 3;
        policy.max_retries = 2;
        core::SimulationResults results = core::run_supervised_simulation(
            golden_config(backend::BackendKind::kHost), policy);
        EXPECT_EQ(fault::failpoints().total_fired(), 2u);
        return results;
      },
      "host_fault.json");
}

TEST_F(GoldenManifest, GpusimDegradesToHost) {
  // Scenario: persistent gpusim-only fault exhausts one retry, then the
  // chain degrades to host and finishes there.
  check_against_golden(
      [] {
        fault::failpoints().disarm_all();
        fault::failpoints().arm_spec("backend.enqueue.gpusim:10+");
        core::SupervisorPolicy policy;
        policy.checkpoint_interval = 3;
        policy.max_retries = 1;
        core::SimulationResults results = core::run_supervised_simulation(
            golden_config(backend::BackendKind::kGpuSim), policy);
        EXPECT_TRUE(results.fault_report.degraded);
        return results;
      },
      "gpusim_degrade.json");
}

}  // namespace
}  // namespace dqmc
