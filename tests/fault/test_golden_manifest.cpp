// Golden-manifest regression: the deterministic manifest subset
// (trajectory hash, sign, measurement bit patterns, fault counters) of two
// canonical fault scenarios is byte-compared against committed fixtures in
// tests/fault/golden/. Any change to the Markov chain, the measurement
// pipeline, or the recovery bookkeeping shows up as a fixture diff.
//
// Regenerate after an INTENDED behavior change with
//   DQMC_GOLDEN_REGEN=1 ctest -R GoldenManifest
// and commit the diff. The fixtures hash floating-point trajectories, so
// they are codegen sensitive (-march=native, optimization level, sanitizer
// instrumentation): only the reference build configuration
// (DQMC_GOLDEN_REFERENCE_BUILD, set by tests/fault/CMakeLists.txt for the
// default preset's flags) byte-compares against the committed files; other
// builds render each scenario twice and byte-compare the two documents —
// the determinism half of the contract — so `ctest -L fault` stays
// meaningful under the tsan/asan presets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "backend/backend.h"
#include "dqmc/run_manifest.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"

#ifndef DQMC_GOLDEN_DIR
#error "DQMC_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace dqmc {
namespace {

core::SimulationConfig golden_config(backend::BackendKind kind) {
  core::SimulationConfig cfg;
  cfg.lx = 2;
  cfg.ly = 2;
  cfg.model.u = 4.0;
  cfg.model.beta = 1.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 4;
  cfg.engine.backend = kind;
  cfg.warmup_sweeps = 4;
  cfg.measurement_sweeps = 8;
  cfg.bins = 4;
  cfg.seed = 2026;
  return cfg;
}

std::string golden_path(const std::string& name) {
  return std::string(DQMC_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// `scenario` must be self-contained (it re-arms its own fail points): the
/// non-reference path replays it to prove the rendered document is a pure
/// function of the configuration.
void check_against_golden(
    const std::function<core::SimulationResults()>& scenario,
    const std::string& name) {
  const std::string rendered =
      core::golden_manifest(scenario()).dump(2) + "\n";
#if defined(DQMC_GOLDEN_REFERENCE_BUILD)
  const std::string path = golden_path(name);
  if (std::getenv("DQMC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << path
      << " — run with DQMC_GOLDEN_REGEN=1 to create it";
  EXPECT_EQ(rendered, expected)
      << "golden manifest drifted; if the change is intended, regenerate "
         "with DQMC_GOLDEN_REGEN=1 and commit the fixture diff";
#else
  // Non-reference codegen: the committed bytes do not apply, but the
  // document must still be exactly reproducible within this build.
  ASSERT_FALSE(read_file(golden_path(name)).empty())
      << "committed fixture " << name << " is missing from the tree";
  const std::string replay =
      core::golden_manifest(scenario()).dump(2) + "\n";
  EXPECT_EQ(rendered, replay)
      << "golden manifest is not deterministic across identical runs";
#endif
}

class GoldenManifest : public ::testing::Test {
 protected:
  void SetUp() override { fault::failpoints().disarm_all(); }
  void TearDown() override { fault::failpoints().disarm_all(); }
};

TEST_F(GoldenManifest, HostRunWithRecoveredFaults) {
  // Scenario: host chain, one mid-run device fault (retried) and one
  // checkpoint write failure (retried) — every counter is deterministic.
  check_against_golden(
      [] {
        fault::failpoints().disarm_all();
        fault::failpoints().arm_spec("backend.enqueue:50,checkpoint.save:2");
        core::SupervisorPolicy policy;
        policy.checkpoint_interval = 3;
        policy.max_retries = 2;
        core::SimulationResults results = core::run_supervised_simulation(
            golden_config(backend::BackendKind::kHost), policy);
        EXPECT_EQ(fault::failpoints().total_fired(), 2u);
        return results;
      },
      "host_fault.json");
}

TEST_F(GoldenManifest, GpusimDegradesToHost) {
  // Scenario: persistent gpusim-only fault exhausts one retry, then the
  // chain degrades to host and finishes there.
  check_against_golden(
      [] {
        fault::failpoints().disarm_all();
        fault::failpoints().arm_spec("backend.enqueue.gpusim:10+");
        core::SupervisorPolicy policy;
        policy.checkpoint_interval = 3;
        policy.max_retries = 1;
        core::SimulationResults results = core::run_supervised_simulation(
            golden_config(backend::BackendKind::kGpuSim), policy);
        EXPECT_TRUE(results.fault_report.degraded);
        return results;
      },
      "gpusim_degrade.json");
}

}  // namespace
}  // namespace dqmc
