#include "linalg/qr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas1.h"
#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::orthogonality_defect;
using testing::reference_matmul;

class QrShapes : public ::testing::TestWithParam<std::tuple<idx, idx, idx>> {};

TEST_P(QrShapes, ReconstructsAndQIsOrthogonal) {
  const auto [m, n, block] = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(m * 1000 + n * 10 + block));
  Matrix a = rng.uniform_matrix(m, n);

  QRFactorization f = qr_factor(a, block);
  Matrix q = qr_q(f, block);
  Matrix r = qr_r(f);

  EXPECT_LE(orthogonality_defect(q), 1e-13 * std::max<idx>(m, 1));

  // Q (m x m) * R-extended: qr_r gives min(m,n) x n; pad for reconstruction.
  Matrix rfull = Matrix::zero(m, n);
  copy(r, rfull.block(0, 0, r.rows(), n));
  Matrix qr = reference_matmul(q, rfull);
  EXPECT_MATRIX_NEAR(qr, a, 1e-12 * std::max<idx>(m, n));

  // R is upper triangular.
  for (idx j = 0; j < r.cols(); ++j)
    for (idx i = j + 1; i < r.rows(); ++i) EXPECT_EQ(r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBlocks, QrShapes,
    ::testing::Values(std::tuple<idx, idx, idx>{1, 1, 4},
                      std::tuple<idx, idx, idx>{8, 8, 4},
                      std::tuple<idx, idx, idx>{33, 33, 8},
                      std::tuple<idx, idx, idx>{64, 64, 32},
                      std::tuple<idx, idx, idx>{100, 100, 32},
                      std::tuple<idx, idx, idx>{50, 20, 8},   // tall
                      std::tuple<idx, idx, idx>{20, 50, 8},   // wide
                      std::tuple<idx, idx, idx>{65, 65, 64},  // block ~ n
                      std::tuple<idx, idx, idx>{48, 48, 100}  // block > n
                      ));

TEST(Qr, ApplyQLeftMatchesExplicitQ) {
  MatrixRng rng(11);
  const idx m = 40, n = 40;
  Matrix a = rng.uniform_matrix(m, n);
  QRFactorization f = qr_factor(a);
  Matrix q = qr_q(f);

  Matrix c = rng.uniform_matrix(m, 7);
  Matrix qc_direct = reference_matmul(q, c);
  Matrix c1 = c;
  qr_apply_q_left(f, Trans::No, c1);
  EXPECT_MATRIX_NEAR(c1, qc_direct, 1e-12);

  Matrix qtc_direct = testing::reference_gemm(true, false, 1.0, q, c, 0.0,
                                              Matrix::zero(m, 7));
  Matrix c2 = c;
  qr_apply_q_left(f, Trans::Yes, c2);
  EXPECT_MATRIX_NEAR(c2, qtc_direct, 1e-12);
}

TEST(Qr, ApplyQThenQTransposeRoundTrips) {
  MatrixRng rng(13);
  Matrix a = rng.uniform_matrix(30, 30);
  QRFactorization f = qr_factor(a);
  Matrix c = rng.uniform_matrix(30, 5);
  Matrix orig = c;
  qr_apply_q_left(f, Trans::No, c);
  qr_apply_q_left(f, Trans::Yes, c);
  EXPECT_MATRIX_NEAR(c, orig, 1e-12);
}

TEST(Qr, BlockedMatchesUnblocked) {
  MatrixRng rng(17);
  Matrix a = rng.uniform_matrix(60, 60);
  QRFactorization f1 = qr_factor(a, /*block=*/1);
  QRFactorization f64 = qr_factor(a, /*block=*/64);
  // Same R up to rounding (Householder QR is deterministic).
  EXPECT_MATRIX_NEAR(qr_r(f1), qr_r(f64), 1e-11);
}

TEST(Qr, RankDeficientColumnGivesZeroTau) {
  Matrix a = Matrix::zero(5, 3);
  for (idx i = 0; i < 5; ++i) a(i, 0) = 1.0;
  // Column 1 is a multiple of column 0, column 2 zero.
  for (idx i = 0; i < 5; ++i) a(i, 1) = 2.0;
  QRFactorization f = qr_factor(a);
  Matrix q = qr_q(f);
  EXPECT_LE(orthogonality_defect(q), 1e-13);
  Matrix r = qr_r(f);
  EXPECT_NEAR(r(1, 1), 0.0, 1e-14);
  EXPECT_NEAR(r(2, 2), 0.0, 1e-14);
}

TEST(Qr, GradedMatrixReconstructionStaysAccurate) {
  // Columns spanning 30 orders of magnitude: the QR itself must not mix
  // scales (each column's error is relative to its own norm).
  MatrixRng rng(23);
  Matrix a = rng.graded_matrix(24, 0.05);
  QRFactorization f = qr_factor(a);
  Matrix q = qr_q(f);
  Matrix r = qr_r(f);
  Matrix qr = reference_matmul(q, r);
  for (idx j = 0; j < a.cols(); ++j) {
    const double colnorm = nrm2(a.rows(), a.col(j));
    double err = 0.0;
    for (idx i = 0; i < a.rows(); ++i)
      err = std::max(err, std::fabs(qr(i, j) - a(i, j)));
    EXPECT_LE(err, 1e-13 * std::max(colnorm, 1e-300)) << "column " << j;
  }
}

}  // namespace
}  // namespace dqmc::linalg
