#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dqmc::linalg {
namespace {

TEST(Matrix, RowMajorInitializerFillsAsWritten) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(Matrix, StorageIsColumnMajor) {
  Matrix m(2, 2, {1, 2, 3, 4});
  // Columns are contiguous: [1,3] then [2,4].
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 3);
  EXPECT_EQ(m.data()[2], 2);
  EXPECT_EQ(m.data()[3], 4);
  EXPECT_EQ(m.col(1)[0], 2);
}

TEST(Matrix, InitializerSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), InvalidArgument);
}

TEST(Matrix, IdentityAndZero) {
  Matrix i = Matrix::identity(3);
  Matrix z = Matrix::zero(3, 3);
  for (idx r = 0; r < 3; ++r)
    for (idx c = 0; c < 3; ++c) {
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
      EXPECT_EQ(z(r, c), 0.0);
    }
}

TEST(Matrix, CopyIsDeep) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b = a;
  b(0, 0) = 99;
  EXPECT_EQ(a(0, 0), 1);
  EXPECT_EQ(b(0, 0), 99);
}

TEST(Matrix, MoveStealsStorage) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const double* raw = a.data();
  Matrix b = std::move(a);
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b(1, 1), 4);
}

TEST(Matrix, BlockViewsShareStorage) {
  Matrix a = Matrix::zero(4, 4);
  MatrixView blk = a.block(1, 1, 2, 2);
  blk(0, 0) = 5.0;
  EXPECT_EQ(a(1, 1), 5.0);
  EXPECT_EQ(blk.ld(), 4);
  EXPECT_FALSE(blk.contiguous());
}

TEST(Matrix, NestedBlockIndexing) {
  Matrix a(4, 4);
  for (idx j = 0; j < 4; ++j)
    for (idx i = 0; i < 4; ++i) a(i, j) = static_cast<double>(10 * i + j);
  ConstMatrixView outer = a.block(1, 1, 3, 3);
  ConstMatrixView inner = outer.block(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), a(2, 2));
  EXPECT_EQ(inner(1, 1), a(3, 3));
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix a = Matrix::zero(3, 3);
  EXPECT_THROW(a.block(1, 1, 3, 1), InvalidArgument);
  EXPECT_THROW(a.block(-1, 0, 1, 1), InvalidArgument);
}

TEST(Matrix, SetIdentityRequiresSquare) {
  Matrix a = Matrix::zero(2, 3);
  EXPECT_THROW(a.set_identity(), InvalidArgument);
}

TEST(Matrix, ResizeDiscardsAndReallocates) {
  Matrix a(2, 2, {1, 2, 3, 4});
  a.resize(3, 5);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 5);
}

TEST(Matrix, CopyOfStridedView) {
  Matrix a(4, 4);
  for (idx j = 0; j < 4; ++j)
    for (idx i = 0; i < 4; ++i) a(i, j) = static_cast<double>(i + 10 * j);
  Matrix sub = Matrix::copy_of(a.block(1, 2, 2, 2));
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub(0, 0), a(1, 2));
  EXPECT_EQ(sub(1, 1), a(2, 3));
  EXPECT_TRUE(sub.view().contiguous());
}

TEST(Vector, BasicOperations) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[1], 2.0);
  v.fill(7.0);
  for (double x : v) EXPECT_EQ(x, 7.0);
  Vector c = Vector::constant(4, 2.5);
  EXPECT_EQ(c.size(), 4);
  EXPECT_EQ(c[3], 2.5);
}

TEST(Vector, CopyAndMove) {
  Vector v{1.0, 2.0};
  Vector w = v;
  w[0] = 9.0;
  EXPECT_EQ(v[0], 1.0);
  Vector m = std::move(v);
  EXPECT_EQ(m[1], 2.0);
}

TEST(CopyFunction, HandlesStridedViews) {
  Matrix a(4, 4);
  for (idx j = 0; j < 4; ++j)
    for (idx i = 0; i < 4; ++i) a(i, j) = static_cast<double>(i + 4 * j);
  Matrix b = Matrix::zero(4, 4);
  copy(a.block(0, 0, 2, 2), b.block(2, 2, 2, 2));
  EXPECT_EQ(b(2, 2), a(0, 0));
  EXPECT_EQ(b(3, 3), a(1, 1));
  EXPECT_EQ(b(0, 0), 0.0);
}

TEST(CopyFunction, DimensionMismatchThrows) {
  Matrix a = Matrix::zero(2, 2);
  Matrix b = Matrix::zero(3, 2);
  EXPECT_THROW(copy(a, b), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::linalg
