// The blocked (DGEQP3-style) pivoted QR against the unblocked reference
// and its own contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas1.h"
#include "linalg/norms.h"
#include "linalg/qrp.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::orthogonality_defect;
using testing::reference_matmul;

class QrpBlockedSweep : public ::testing::TestWithParam<std::tuple<idx, idx>> {};

TEST_P(QrpBlockedSweep, ReconstructsPermutedMatrix) {
  const auto [n, panel] = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n * 37 + panel));
  Matrix a = rng.uniform_matrix(n, n);

  QRPFactorization f = qrp_factor(a, panel);
  f.jpvt.check_valid();
  QRFactorization qf{f.factors, f.tau};
  Matrix q = qr_q(qf);
  Matrix r = qr_r(qf);
  EXPECT_LE(orthogonality_defect(q), 1e-12 * n);

  Matrix ap(n, n);
  apply_permutation(a, f.jpvt, ap);
  EXPECT_MATRIX_NEAR(reference_matmul(q, r), ap, 1e-11 * n);
}

TEST_P(QrpBlockedSweep, DiagonalOfRIsNonIncreasing) {
  const auto [n, panel] = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n * 41 + panel));
  Matrix a = rng.uniform_matrix(n, n);
  QRPFactorization f = qrp_factor(a, panel);
  for (idx i = 1; i < n; ++i) {
    EXPECT_LE(std::fabs(f.factors(i, i)),
              std::fabs(f.factors(i - 1, i - 1)) * (1.0 + 1e-10) + 1e-12)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPanels, QrpBlockedSweep,
    ::testing::Combine(::testing::Values(1, 5, 16, 33, 64, 96),
                       ::testing::Values(4, 8, 32, 100)));

TEST(QrpBlocked, MatchesUnblockedOnWellSeparatedNorms) {
  // With strongly graded columns the pivot sequence is unambiguous, so the
  // blocked and unblocked algorithms must produce identical permutations
  // and R factors (up to roundoff).
  MatrixRng rng(523);
  Matrix a = rng.graded_matrix(48, 0.5);
  QRPFactorization fb = qrp_factor(a, 8);
  QRPFactorization fu = qrp_factor_unblocked(a);
  for (idx j = 0; j < 48; ++j) EXPECT_EQ(fb.jpvt[j], fu.jpvt[j]) << j;
  for (idx i = 0; i < 48; ++i)
    EXPECT_NEAR(std::fabs(fb.factors(i, i)), std::fabs(fu.factors(i, i)),
                1e-10 * std::fabs(fu.factors(0, 0)))
        << i;
}

TEST(QrpBlocked, HandlesRankDeficiency) {
  MatrixRng rng(541);
  Matrix u = rng.uniform_matrix(40, 3);
  Matrix v = rng.uniform_matrix(3, 40);
  Matrix a = reference_matmul(u, v);  // rank 3
  QRPFactorization f = qrp_factor(a, 8);
  for (idx i = 3; i < 40; ++i)
    EXPECT_NEAR(f.factors(i, i), 0.0, 1e-10) << i;
}

TEST(QrpBlocked, IllConditionedGradedInputStaysAccurate) {
  // The DQMC-like case: columns spanning ~20 decades.
  MatrixRng rng(547);
  Matrix a = rng.graded_matrix(32, 0.2);
  QRPFactorization f = qrp_factor(a, 8);
  QRFactorization qf{f.factors, f.tau};
  Matrix q = qr_q(qf);
  Matrix r = qr_r(qf);
  Matrix ap(32, 32);
  apply_permutation(a, f.jpvt, ap);
  Matrix qr = reference_matmul(q, r);
  // Column-wise relative accuracy (each column to its own scale).
  for (idx j = 0; j < 32; ++j) {
    const double scale = nrm2(32, ap.col(j));
    double err = 0.0;
    for (idx i = 0; i < 32; ++i)
      err = std::max(err, std::fabs(qr(i, j) - ap(i, j)));
    EXPECT_LE(err, 1e-12 * std::max(scale, 1e-300)) << j;
  }
}

TEST(QrpBlocked, RejectsRectangular) {
  Matrix a = Matrix::zero(4, 6);
  EXPECT_THROW(qrp_factor(a), InvalidArgument);
  EXPECT_NO_THROW(qrp_factor_unblocked(std::move(a)));
}

}  // namespace
}  // namespace dqmc::linalg
