#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::reference_matmul;

TEST(Expm, DiagonalMatrix) {
  Matrix a = Matrix::zero(3, 3);
  a(0, 0) = 0.0;
  a(1, 1) = 1.0;
  a(2, 2) = -2.0;
  Matrix e = expm_symmetric(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 1), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(-2.0), 1e-14);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
  Matrix a = Matrix::zero(5, 5);
  Matrix e = expm_symmetric(a);
  EXPECT_MATRIX_NEAR(e, Matrix::identity(5), 1e-14);
}

TEST(Expm, MatchesTaylorSeriesOnSmallMatrix) {
  MatrixRng rng(83);
  Matrix a = rng.uniform_matrix(8, 8);
  for (idx j = 0; j < 8; ++j)
    for (idx i = 0; i < j; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = s;
    }
  // Scale down so the Taylor series converges quickly.
  for (idx j = 0; j < 8; ++j)
    for (idx i = 0; i < 8; ++i) a(i, j) *= 0.1;

  Matrix expected = Matrix::identity(8);
  Matrix term = Matrix::identity(8);
  for (int k = 1; k <= 30; ++k) {
    term = reference_matmul(term, a);
    for (idx j = 0; j < 8; ++j)
      for (idx i = 0; i < 8; ++i) {
        term(i, j) /= k;
        expected(i, j) += term(i, j);
      }
  }
  Matrix e = expm_symmetric(a);
  EXPECT_MATRIX_NEAR(e, expected, 1e-12);
}

TEST(Expm, PairGivesMutualInverses) {
  MatrixRng rng(89);
  Matrix a = rng.uniform_matrix(12, 12);
  for (idx j = 0; j < 12; ++j)
    for (idx i = 0; i < j; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = s;
    }
  ExpmPair p = expm_symmetric_pair(a, 0.7);
  Matrix prod = reference_matmul(p.exp_pos, p.exp_neg);
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(12), 1e-11);
}

TEST(Expm, ScalingParameterIsApplied) {
  Matrix a(1, 1, {2.0});
  Matrix e = expm_symmetric(a, -0.5);
  EXPECT_NEAR(e(0, 0), std::exp(-1.0), 1e-14);
}

TEST(Expm, ExponentialIsSymmetricPositiveDefinite) {
  MatrixRng rng(97);
  Matrix a = rng.uniform_matrix(10, 10);
  for (idx j = 0; j < 10; ++j)
    for (idx i = 0; i < j; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = s;
    }
  Matrix e = expm_symmetric(a);
  for (idx j = 0; j < 10; ++j)
    for (idx i = 0; i < 10; ++i) EXPECT_NEAR(e(i, j), e(j, i), 1e-12);
  SymmetricEigen se = eig_sym(e);
  EXPECT_GT(se.eigenvalues[0], 0.0);
}

TEST(SpectralFunction, AppliesArbitraryFunction) {
  Matrix a = Matrix::zero(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  SymmetricEigen e = eig_sym(a);
  Matrix s = spectral_function(e, [](double x) { return std::sqrt(x); });
  EXPECT_NEAR(s(0, 0), 2.0, 1e-13);
  EXPECT_NEAR(s(1, 1), 3.0, 1e-13);
}

}  // namespace
}  // namespace dqmc::linalg
