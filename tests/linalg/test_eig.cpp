#include "linalg/eig_sym.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::orthogonality_defect;
using testing::reference_matmul;

/// Build a random symmetric matrix with a known spectrum: V diag(w) V^T.
Matrix symmetric_with_spectrum(MatrixRng& rng, const Vector& w) {
  const idx n = w.size();
  Matrix v = rng.orthogonal_matrix(n);
  Matrix scaled = v;
  for (idx j = 0; j < n; ++j)
    for (idx i = 0; i < n; ++i) scaled(i, j) *= w[j];
  return testing::reference_gemm(false, true, 1.0, scaled, v, 0.0,
                                 Matrix::zero(n, n));
}

class EigSizes : public ::testing::TestWithParam<idx> {};

TEST_P(EigSizes, RecoverseigenpairsOfRandomSymmetric) {
  const idx n = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n) * 101);
  Matrix a = rng.uniform_matrix(n, n);
  // Symmetrize.
  for (idx j = 0; j < n; ++j)
    for (idx i = 0; i < j; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = s;
    }

  SymmetricEigen e = eig_sym(a);
  EXPECT_LE(orthogonality_defect(e.eigenvectors), 1e-12 * n);
  // Ascending order.
  for (idx i = 1; i < n; ++i)
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i] + 1e-13);
  // A v_i == w_i v_i.
  Matrix av = reference_matmul(a, e.eigenvectors);
  for (idx i = 0; i < n; ++i)
    for (idx r = 0; r < n; ++r)
      EXPECT_NEAR(av(r, i), e.eigenvalues[i] * e.eigenvectors(r, i), 1e-11 * n)
          << "pair " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes, ::testing::Values(1, 2, 3, 5, 16, 40, 81));

TEST(EigSym, KnownSpectrumIsRecovered) {
  MatrixRng rng(73);
  Vector w{-3.0, -1.0, 0.5, 2.0, 10.0};
  Matrix a = symmetric_with_spectrum(rng, w);
  SymmetricEigen e = eig_sym(a);
  for (idx i = 0; i < 5; ++i) EXPECT_NEAR(e.eigenvalues[i], w[i], 1e-11);
}

TEST(EigSym, DegenerateEigenvaluesStillOrthogonal) {
  MatrixRng rng(79);
  Vector w{1.0, 1.0, 1.0, 4.0, 4.0};
  Matrix a = symmetric_with_spectrum(rng, w);
  SymmetricEigen e = eig_sym(a);
  EXPECT_LE(orthogonality_defect(e.eigenvectors), 1e-11);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-11);
  EXPECT_NEAR(e.eigenvalues[4], 4.0, 1e-11);
}

TEST(EigSym, DiagonalMatrixIsItsOwnSpectrum) {
  Matrix a = Matrix::zero(4, 4);
  a(0, 0) = 4;
  a(1, 1) = -2;
  a(2, 2) = 0;
  a(3, 3) = 1;
  SymmetricEigen e = eig_sym(a);
  EXPECT_NEAR(e.eigenvalues[0], -2, 1e-14);
  EXPECT_NEAR(e.eigenvalues[1], 0, 1e-14);
  EXPECT_NEAR(e.eigenvalues[2], 1, 1e-14);
  EXPECT_NEAR(e.eigenvalues[3], 4, 1e-14);
}

TEST(EigSym, TightBindingRingHasKnownSpectrum) {
  // 1D periodic hopping matrix: eigenvalues -2 cos(2 pi k / n).
  const idx n = 12;
  Matrix k = Matrix::zero(n, n);
  for (idx i = 0; i < n; ++i) {
    k(i, (i + 1) % n) = -1.0;
    k((i + 1) % n, i) = -1.0;
  }
  SymmetricEigen e = eig_sym(k);
  Vector expected(n);
  for (idx m = 0; m < n; ++m)
    expected[m] = -2.0 * std::cos(2.0 * std::numbers::pi * m / n);
  std::sort(expected.begin(), expected.end());
  for (idx i = 0; i < n; ++i)
    EXPECT_NEAR(e.eigenvalues[i], expected[i], 1e-12) << i;
}

TEST(EigSym, RejectsNonSymmetric) {
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(eig_sym(a), InvalidArgument);
}

TEST(EigSym, OneByOne) {
  Matrix a(1, 1, {42.0});
  SymmetricEigen e = eig_sym(a);
  EXPECT_EQ(e.eigenvalues[0], 42.0);
  EXPECT_EQ(e.eigenvectors(0, 0), 1.0);
}

}  // namespace
}  // namespace dqmc::linalg
