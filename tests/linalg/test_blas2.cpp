#include "linalg/blas2.h"

#include <gtest/gtest.h>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(Gemv, NoTransMatchesHandResult) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const double x[] = {1, 1, 1};
  double y[] = {10, 10};
  gemv(Trans::No, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Gemv, TransMatchesHandResult) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const double x[] = {1, 2};
  double y[] = {0, 0, 0};
  gemv(Trans::Yes, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(Gemv, AlphaBetaCombine) {
  Matrix a = Matrix::identity(2);
  const double x[] = {1, 2};
  double y[] = {10, 20};
  gemv(Trans::No, 2.0, a, x, 3.0, y);
  EXPECT_DOUBLE_EQ(y[0], 32.0);
  EXPECT_DOUBLE_EQ(y[1], 64.0);
}

TEST(Ger, RankOneUpdate) {
  Matrix a = Matrix::zero(2, 2);
  const double x[] = {1, 2};
  const double y[] = {3, 4};
  ger(2.0, x, y, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 16.0);
}

TEST(Ger, AlphaZeroIsNoop) {
  Matrix a = Matrix::identity(2);
  const double x[] = {1e300, 1e300};
  ger(0.0, x, x, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

class TrsvTest : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsvTest, SolveThenMultiplyRoundTrips) {
  auto [uplo, trans, diag] = GetParam();
  MatrixRng rng(42);
  const idx n = 12;
  // Well-conditioned triangular matrix: dominant diagonal.
  Matrix t = rng.uniform_matrix(n, n);
  for (idx i = 0; i < n; ++i) t(i, i) = 4.0 + i * 0.1;
  // Zero-out the irrelevant triangle so the reference multiply below is easy.
  for (idx j = 0; j < n; ++j)
    for (idx i = 0; i < n; ++i) {
      const bool keep = (uplo == UpLo::Upper) ? (i <= j) : (i >= j);
      if (!keep) t(i, j) = 0.0;
    }
  if (diag == Diag::Unit)
    for (idx i = 0; i < n; ++i) t(i, i) = 1.0;

  Vector b(n);
  for (idx i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
  Vector x = b;
  trsv(uplo, trans, diag, t, x.data());

  // Check op(T) * x == b.
  Matrix op = (trans == Trans::Yes) ? transpose(t) : t;
  Vector tx(n);
  for (idx i = 0; i < n; ++i) {
    double s = 0.0;
    for (idx j = 0; j < n; ++j) s += op(i, j) * x[j];
    tx[i] = s;
  }
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(tx[i], b[i], 1e-12) << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsvTest,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

}  // namespace
}  // namespace dqmc::linalg
