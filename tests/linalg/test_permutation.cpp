#include "linalg/permutation.h"

#include <gtest/gtest.h>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(Permutation, IdentityByDefault) {
  Permutation p(4);
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.displacement(), 0);
}

TEST(Permutation, InvalidMapsThrow) {
  EXPECT_THROW(Permutation({0, 0, 1}), InvalidArgument);   // repeated
  EXPECT_THROW(Permutation({0, 3, 1}), InvalidArgument);   // out of range
  EXPECT_THROW(Permutation({-1, 0, 1}), InvalidArgument);  // negative
}

TEST(Permutation, InverseComposesToIdentity) {
  Permutation p({2, 0, 3, 1});
  Permutation q = p.inverse();
  for (idx j = 0; j < 4; ++j) EXPECT_EQ(q[p[j]], j);
}

TEST(Permutation, DisplacementCountsMovedEntries) {
  Permutation p({1, 0, 2, 3});
  EXPECT_EQ(p.displacement(), 2);
}

TEST(ApplyPermutation, GathersColumns) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Permutation p({2, 0, 1});
  Matrix out(2, 3);
  apply_permutation(a, p, out);
  // out(:,0) = a(:,2), out(:,1) = a(:,0), out(:,2) = a(:,1)
  EXPECT_DOUBLE_EQ(out(0, 0), 3);
  EXPECT_DOUBLE_EQ(out(0, 1), 1);
  EXPECT_DOUBLE_EQ(out(0, 2), 2);
}

TEST(ApplyPermutation, TransposeScattersColumns) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Permutation p({2, 0, 1});
  Matrix gathered(2, 3), back(2, 3);
  apply_permutation(a, p, gathered);
  apply_permutation_transpose(gathered, p, back);
  EXPECT_MATRIX_NEAR(back, a, 0.0);
}

TEST(ApplyPermutation, MatchesExplicitPermutationMatrix) {
  // A*P where P = [e_{p0} e_{p1} ...]: column j of A*P is A(:,p[j]).
  MatrixRng rng(127);
  Matrix a = rng.uniform_matrix(5, 5);
  Permutation p({4, 2, 0, 1, 3});
  Matrix pm = Matrix::zero(5, 5);
  for (idx j = 0; j < 5; ++j) pm(p[j], j) = 1.0;
  Matrix expected = testing::reference_matmul(a, pm);
  Matrix out(5, 5);
  apply_permutation(a, p, out);
  EXPECT_MATRIX_NEAR(out, expected, 0.0);
}

TEST(ApplyPermutation, InPlaceAliasThrows) {
  Matrix a = Matrix::zero(2, 2);
  Permutation p(2);
  EXPECT_THROW(apply_permutation(a, p, a), InvalidArgument);
}

TEST(Permutation, PresortedFractionIdentityIsOne) {
  Permutation p(5);
  EXPECT_DOUBLE_EQ(p.presorted_fraction(), 1.0);
}

TEST(Permutation, PresortedFractionReversalIsZero) {
  Permutation p({4, 3, 2, 1, 0});
  EXPECT_DOUBLE_EQ(p.presorted_fraction(), 0.0);
}

TEST(Permutation, PresortedFractionCountsAdjacentInversions) {
  // p maps sorted slots to source columns 0,1,3,2: only the (2,3) adjacent
  // source pair is out of order -> 2 of 3 pairs preserved.
  Permutation p({0, 1, 3, 2});
  EXPECT_DOUBLE_EQ(p.presorted_fraction(), 2.0 / 3.0);
}

TEST(Permutation, PresortedFractionDegenerateSizes) {
  EXPECT_DOUBLE_EQ(Permutation(1).presorted_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(Permutation(0).presorted_fraction(), 1.0);
}

TEST(PermuteVector, GatherAndScatterAreInverse) {
  Permutation p({3, 1, 0, 2});
  double x[] = {10, 11, 12, 13};
  permute_vector(p, x);  // x[j] = old x[p[j]]
  EXPECT_DOUBLE_EQ(x[0], 13);
  EXPECT_DOUBLE_EQ(x[1], 11);
  EXPECT_DOUBLE_EQ(x[2], 10);
  EXPECT_DOUBLE_EQ(x[3], 12);
  permute_vector_transpose(p, x);
  EXPECT_DOUBLE_EQ(x[0], 10);
  EXPECT_DOUBLE_EQ(x[1], 11);
  EXPECT_DOUBLE_EQ(x[2], 12);
  EXPECT_DOUBLE_EQ(x[3], 13);
}

}  // namespace
}  // namespace dqmc::linalg
