#include "linalg/util.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(Util, TransposeRoundTrips) {
  MatrixRng rng(131);
  Matrix a = rng.uniform_matrix(70, 130);  // crosses the 64-block boundary
  Matrix t = transpose(a);
  ASSERT_EQ(t.rows(), 130);
  ASSERT_EQ(t.cols(), 70);
  for (idx j = 0; j < a.cols(); ++j)
    for (idx i = 0; i < a.rows(); ++i) ASSERT_EQ(t(j, i), a(i, j));
  Matrix tt = transpose(t);
  EXPECT_MATRIX_NEAR(tt, a, 0.0);
}

TEST(Util, AddAndAddIdentity) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  Matrix c = add(a, b, 0.5);
  EXPECT_DOUBLE_EQ(c(0, 0), 6);
  EXPECT_DOUBLE_EQ(c(1, 1), 24);
  add_identity(a, 10.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 11);
  EXPECT_DOUBLE_EQ(a(1, 1), 14);
  EXPECT_DOUBLE_EQ(a(0, 1), 2);
}

TEST(MatrixRng, DeterministicAcrossInstances) {
  MatrixRng r1(42), r2(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(r1.uniform(), r2.uniform());
}

TEST(MatrixRng, UniformRespectsBounds) {
  MatrixRng rng(137);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(MatrixRng, NormalHasPlausibleMoments) {
  MatrixRng rng(139);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(MatrixRng, OrthogonalMatrixIsOrthogonal) {
  MatrixRng rng(149);
  Matrix q = rng.orthogonal_matrix(25);
  EXPECT_LE(testing::orthogonality_defect(q), 1e-13);
}

TEST(MatrixRng, GradedMatrixColumnNormsDecay) {
  MatrixRng rng(151);
  Matrix g = rng.graded_matrix(16, 0.1);
  Vector norms = column_norms(g);
  for (idx j = 1; j < 16; ++j) {
    EXPECT_LT(norms[j], norms[j - 1]) << "grading broken at column " << j;
  }
  // Roughly 15 decades between first and last.
  EXPECT_LT(norms[15] / norms[0], 1e-12);
}

}  // namespace
}  // namespace dqmc::linalg
