#include "linalg/blas3.h"

#include <gtest/gtest.h>

#include <tuple>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::reference_gemm;

/// Parameter sweep: (m, n, k, transa, transb, alpha, beta). Shapes straddle
/// the micro-kernel tile (8x6) and cache-block boundaries on purpose.
class GemmSweep
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<idx, idx, idx>, bool, bool, double, double>> {};

TEST_P(GemmSweep, MatchesNaiveReference) {
  const auto [shape, ta, tb, alpha, beta] = GetParam();
  const auto [m, n, k] = shape;
  MatrixRng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));

  Matrix a = ta ? rng.uniform_matrix(k, m) : rng.uniform_matrix(m, k);
  Matrix b = tb ? rng.uniform_matrix(n, k) : rng.uniform_matrix(k, n);
  Matrix c = rng.uniform_matrix(m, n);

  Matrix expected = reference_gemm(ta, tb, alpha, a, b, beta, c);
  gemm(ta ? Trans::Yes : Trans::No, tb ? Trans::Yes : Trans::No, alpha, a, b,
       beta, c);
  // Error bound ~ k * eps * |row||col|; generous fixed tolerance.
  EXPECT_MATRIX_NEAR(c, expected, 1e-11 * std::max<idx>(k, 1));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndFlags, GemmSweep,
    ::testing::Combine(
        ::testing::Values(std::tuple<idx, idx, idx>{1, 1, 1},
                          std::tuple<idx, idx, idx>{8, 6, 4},
                          std::tuple<idx, idx, idx>{9, 7, 5},
                          std::tuple<idx, idx, idx>{16, 12, 256},
                          std::tuple<idx, idx, idx>{64, 64, 64},
                          std::tuple<idx, idx, idx>{100, 50, 300},
                          std::tuple<idx, idx, idx>{200, 3, 200},
                          std::tuple<idx, idx, idx>{3, 200, 200},
                          std::tuple<idx, idx, idx>{193, 100, 257}),
        ::testing::Bool(), ::testing::Bool(), ::testing::Values(1.0, -0.5),
        ::testing::Values(0.0, 1.0, 2.0)));

TEST(Gemm, ZeroInnerDimensionScalesC) {
  Matrix a(3, 0);
  Matrix b(0, 2);
  Matrix c(3, 2, {1, 2, 3, 4, 5, 6});
  gemm(Trans::No, Trans::No, 1.0, a, b, 2.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(2, 1), 12.0);
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix a = Matrix::zero(3, 4);
  Matrix b = Matrix::zero(5, 2);
  Matrix c = Matrix::zero(3, 2);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c),
               InvalidArgument);
}

TEST(Gemm, WorksOnStridedViews) {
  MatrixRng rng(7);
  Matrix big = rng.uniform_matrix(20, 20);
  Matrix a = Matrix::copy_of(big.block(2, 3, 10, 6));
  Matrix b = Matrix::copy_of(big.block(0, 0, 6, 8));
  Matrix c1 = Matrix::zero(10, 8);
  gemm(Trans::No, Trans::No, 1.0, big.block(2, 3, 10, 6),
       big.block(0, 0, 6, 8), 0.0, c1);
  Matrix c2 = testing::reference_matmul(a, b);
  EXPECT_MATRIX_NEAR(c1, c2, 1e-12);
}

TEST(Matmul, ConvenienceWrapper) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  Matrix ct = matmul(a, b, Trans::Yes, Trans::No);
  EXPECT_DOUBLE_EQ(ct(0, 0), 26.0);
}

class TrsmSweep
    : public ::testing::TestWithParam<std::tuple<Side, UpLo, Trans, Diag>> {};

TEST_P(TrsmSweep, SolutionSatisfiesEquation) {
  const auto [side, uplo, trans, diag] = GetParam();
  MatrixRng rng(99);
  const idx m = 17, n = 9;
  const idx tn = side == Side::Left ? m : n;

  Matrix t = rng.uniform_matrix(tn, tn);
  for (idx j = 0; j < tn; ++j)
    for (idx i = 0; i < tn; ++i) {
      const bool keep = (uplo == UpLo::Upper) ? (i <= j) : (i >= j);
      if (!keep) t(i, j) = 0.0;
    }
  for (idx i = 0; i < tn; ++i)
    t(i, i) = (diag == Diag::Unit) ? 1.0 : 3.0 + 0.1 * i;

  Matrix b0 = rng.uniform_matrix(m, n);
  Matrix x = b0;
  const double alpha = 2.0;
  trsm(side, uplo, trans, diag, alpha, t, x);

  Matrix opt = (trans == Trans::Yes) ? transpose(t) : Matrix(t);
  Matrix lhs = (side == Side::Left) ? testing::reference_matmul(opt, x)
                                    : testing::reference_matmul(x, opt);
  for (idx j = 0; j < n; ++j)
    for (idx i = 0; i < m; ++i)
      EXPECT_NEAR(lhs(i, j), alpha * b0(i, j), 1e-10) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmSweep,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

class TrmmSweep
    : public ::testing::TestWithParam<std::tuple<Side, UpLo, Trans, Diag>> {};

TEST_P(TrmmSweep, MatchesDenseMultiply) {
  const auto [side, uplo, trans, diag] = GetParam();
  MatrixRng rng(5);
  const idx m = 13, n = 11;
  const idx tn = side == Side::Left ? m : n;

  Matrix t = rng.uniform_matrix(tn, tn);
  for (idx j = 0; j < tn; ++j)
    for (idx i = 0; i < tn; ++i) {
      const bool keep = (uplo == UpLo::Upper) ? (i <= j) : (i >= j);
      if (!keep) t(i, j) = 0.0;
    }
  if (diag == Diag::Unit)
    for (idx i = 0; i < tn; ++i) t(i, i) = 1.0;

  Matrix b = rng.uniform_matrix(m, n);
  Matrix expected;
  {
    Matrix opt = (trans == Trans::Yes) ? transpose(t) : Matrix(t);
    expected = (side == Side::Left) ? testing::reference_matmul(opt, b)
                                    : testing::reference_matmul(b, opt);
    const double alpha = -1.5;
    for (idx j = 0; j < n; ++j)
      for (idx i = 0; i < m; ++i) expected(i, j) *= alpha;
  }
  trmm(side, uplo, trans, diag, -1.5, t, b);
  EXPECT_MATRIX_NEAR(b, expected, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmmSweep,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

}  // namespace
}  // namespace dqmc::linalg
