// Direct unit tests of the GEMM packing routines and micro-kernel.
#include "linalg/gemm_kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/aligned.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg::detail {
namespace {

TEST(GemmKernel, PackAMirrorsColumnStrips) {
  MatrixRng rng(601);
  Matrix a = rng.uniform_matrix(10, 5);
  const idx mc = 10, kc = 5;
  std::vector<double> buf(static_cast<std::size_t>(round_up(mc, kMR)) * kc,
                          -99.0);
  pack_a(a, /*trans=*/false, 0, 0, mc, kc, buf.data());
  // Element (i, p) lives at strip(i/kMR)*kc*kMR + p*kMR + i%kMR.
  for (idx p = 0; p < kc; ++p) {
    for (idx i = 0; i < mc; ++i) {
      const idx strip = i / kMR;
      const double got =
          buf[static_cast<std::size_t>(strip * kc * kMR + p * kMR + i % kMR)];
      EXPECT_EQ(got, a(i, p)) << i << "," << p;
    }
  }
  // Zero padding to the strip height.
  for (idx p = 0; p < kc; ++p) {
    for (idx i = mc; i < round_up(mc, kMR); ++i) {
      const idx strip = i / kMR;
      EXPECT_EQ(buf[static_cast<std::size_t>(strip * kc * kMR + p * kMR + i % kMR)], 0.0);
    }
  }
}

TEST(GemmKernel, PackATransposed) {
  MatrixRng rng(603);
  Matrix a = rng.uniform_matrix(6, 9);  // packing a^T block: 9 rows, 6 cols
  std::vector<double> buf(static_cast<std::size_t>(round_up(9, kMR)) * 6);
  pack_a(a, /*trans=*/true, 0, 0, /*mc=*/9, /*kc=*/6, buf.data());
  for (idx p = 0; p < 6; ++p)
    for (idx i = 0; i < 9; ++i) {
      const idx strip = i / kMR;
      EXPECT_EQ(buf[static_cast<std::size_t>(strip * 6 * kMR + p * kMR + i % kMR)],
                a(p, i));
    }
}

TEST(GemmKernel, PackBMirrorsRowStrips) {
  MatrixRng rng(605);
  Matrix b = rng.uniform_matrix(4, 13);
  const idx kc = 4, nc = 13;
  std::vector<double> buf(static_cast<std::size_t>(kc) * round_up(nc, kNR),
                          -99.0);
  pack_b(b, false, 0, 0, kc, nc, buf.data());
  for (idx p = 0; p < kc; ++p) {
    for (idx j = 0; j < nc; ++j) {
      const idx strip = j / kNR;
      const double got =
          buf[static_cast<std::size_t>(strip * kc * kNR + p * kNR + j % kNR)];
      EXPECT_EQ(got, b(p, j)) << p << "," << j;
    }
  }
}

TEST(GemmKernel, MicroKernelFullTileMatchesNaive) {
  MatrixRng rng(607);
  const idx kc = 23;
  Matrix a = rng.uniform_matrix(kMR, kc);
  Matrix b = rng.uniform_matrix(kc, kNR);
  // Pack manually: contiguous strips.
  std::vector<double> ap(static_cast<std::size_t>(kMR) * kc);
  std::vector<double> bp(static_cast<std::size_t>(kc) * kNR);
  for (idx p = 0; p < kc; ++p)
    for (idx i = 0; i < kMR; ++i) ap[static_cast<std::size_t>(p * kMR + i)] = a(i, p);
  for (idx p = 0; p < kc; ++p)
    for (idx j = 0; j < kNR; ++j) bp[static_cast<std::size_t>(p * kNR + j)] = b(p, j);

  Matrix c = Matrix::zero(kMR, kNR);
  micro_kernel(kc, 1.0, ap.data(), bp.data(), 0.0, c.data(), kMR, kMR, kNR);
  Matrix expected = testing::reference_matmul(a, b);
  EXPECT_MATRIX_NEAR(c, expected, 1e-13);
}

TEST(GemmKernel, MicroKernelEdgeTile) {
  MatrixRng rng(609);
  const idx kc = 7, mr = 3, nr = 2;
  std::vector<double> ap(static_cast<std::size_t>(kMR) * kc, 0.0);
  std::vector<double> bp(static_cast<std::size_t>(kc) * kNR, 0.0);
  Matrix a = rng.uniform_matrix(mr, kc);
  Matrix b = rng.uniform_matrix(kc, nr);
  for (idx p = 0; p < kc; ++p) {
    for (idx i = 0; i < mr; ++i) ap[static_cast<std::size_t>(p * kMR + i)] = a(i, p);
    for (idx j = 0; j < nr; ++j) bp[static_cast<std::size_t>(p * kNR + j)] = b(p, j);
  }
  // Guard ring: C larger than the tile; only (mr x nr) may change.
  Matrix c = Matrix::zero(kMR, kNR);
  c.fill(7.0);
  micro_kernel(kc, 1.0, ap.data(), bp.data(), 0.0, c.data(), kMR, mr, nr);
  Matrix expected = testing::reference_matmul(a, b);
  for (idx j = 0; j < kNR; ++j)
    for (idx i = 0; i < kMR; ++i) {
      if (i < mr && j < nr) {
        EXPECT_NEAR(c(i, j), expected(i, j), 1e-13);
      } else {
        EXPECT_EQ(c(i, j), 7.0) << "guard overwritten at " << i << "," << j;
      }
    }
}

TEST(GemmKernel, MicroKernelBetaOneAccumulates) {
  const idx kc = 3;
  std::vector<double> ap(static_cast<std::size_t>(kMR) * kc, 1.0);
  std::vector<double> bp(static_cast<std::size_t>(kc) * kNR, 1.0);
  Matrix c = Matrix::zero(kMR, kNR);
  c.fill(10.0);
  micro_kernel(kc, 1.0, ap.data(), bp.data(), 1.0, c.data(), kMR, kMR, kNR);
  for (idx j = 0; j < kNR; ++j)
    for (idx i = 0; i < kMR; ++i) EXPECT_EQ(c(i, j), 13.0);
}

}  // namespace
}  // namespace dqmc::linalg::detail
