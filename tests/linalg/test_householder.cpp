// Unit tests of the Householder primitives underlying both QR variants.
#include "linalg/householder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/blas1.h"
#include "linalg/qr.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(MakeHouseholder, AnnihilatesTail) {
  MatrixRng rng(701);
  const idx n = 9;
  Vector x(n), orig(n);
  for (idx i = 0; i < n; ++i) orig[i] = x[i] = rng.uniform(-1, 1);
  const double tau = make_householder(n, x.data());

  // Reconstruct v = [1, x(1:)] and apply H = I - tau v v^T to the original.
  Vector v(n);
  v[0] = 1.0;
  for (idx i = 1; i < n; ++i) v[i] = x[i];
  const double vdotx = dot(n, v.data(), orig.data());
  Vector hx(n);
  for (idx i = 0; i < n; ++i) hx[i] = orig[i] - tau * vdotx * v[i];

  EXPECT_NEAR(hx[0], x[0], 1e-13);  // beta
  for (idx i = 1; i < n; ++i) EXPECT_NEAR(hx[i], 0.0, 1e-13) << i;
  // Norm preservation: |beta| == ||x||.
  EXPECT_NEAR(std::fabs(x[0]), nrm2(n, orig.data()), 1e-13);
}

TEST(MakeHouseholder, ZeroTailGivesZeroTau) {
  Vector x{3.0, 0.0, 0.0};
  EXPECT_EQ(make_householder(3, x.data()), 0.0);
  EXPECT_EQ(x[0], 3.0);  // untouched
}

TEST(MakeHouseholder, LengthOneIsIdentity) {
  Vector x{5.0};
  EXPECT_EQ(make_householder(1, x.data()), 0.0);
}

TEST(ApplyHouseholderLeft, MatchesExplicitReflector) {
  MatrixRng rng(703);
  const idx m = 8, ncols = 5;
  Vector x(m);
  for (idx i = 0; i < m; ++i) x[i] = rng.uniform(-1, 1);
  Vector xf = x;
  const double tau = make_householder(m, xf.data());

  Matrix c = rng.uniform_matrix(m, ncols);
  Matrix expected = c;
  // H = I - tau v v^T explicitly.
  Vector v(m);
  v[0] = 1.0;
  for (idx i = 1; i < m; ++i) v[i] = xf[i];
  for (idx j = 0; j < ncols; ++j) {
    const double s = tau * dot(m, v.data(), expected.col(j));
    for (idx i = 0; i < m; ++i) expected(i, j) -= s * v[i];
  }

  std::vector<double> work(static_cast<std::size_t>(ncols));
  apply_householder_left(tau, xf.data(), c, work.data());
  EXPECT_MATRIX_NEAR(c, expected, 1e-13);
}

TEST(BuildTFactor, BlockReflectorEqualsSequentialReflectors) {
  // Factor a panel, then check I - V T V^T equals H_0 H_1 ... H_{nb-1}.
  MatrixRng rng(707);
  const idx m = 12, nb = 4;
  Matrix a = rng.uniform_matrix(m, nb);
  Vector tau(nb);
  qr_factor_inplace(a, tau.data(), /*block=*/nb);

  Matrix t(nb, nb);
  build_t_factor(a, tau.data(), t);

  // Sequential: apply H_{nb-1} ... then H_0 to the identity => Q.
  Matrix q_seq = Matrix::identity(m);
  std::vector<double> work(static_cast<std::size_t>(m));
  for (idx k = nb - 1; k >= 0; --k) {
    // v_k lives in column k, rows k..m.
    apply_householder_left(tau[k], &a(k, k),
                           q_seq.view().block(k, 0, m - k, m), work.data());
  }

  // Blocked: Q = I - V T V^T applied to identity.
  Matrix q_blk = Matrix::identity(m);
  apply_block_reflector_left(a, t, Trans::No, q_blk);

  EXPECT_MATRIX_NEAR(q_blk, q_seq, 1e-12);
}

TEST(ApplyBlockReflector, TransposeIsInverse) {
  MatrixRng rng(709);
  const idx m = 10, nb = 3;
  Matrix a = rng.uniform_matrix(m, nb);
  Vector tau(nb);
  qr_factor_inplace(a, tau.data(), nb);
  Matrix t(nb, nb);
  build_t_factor(a, tau.data(), t);

  Matrix c = rng.uniform_matrix(m, 6);
  Matrix orig = c;
  apply_block_reflector_left(a, t, Trans::No, c);
  apply_block_reflector_left(a, t, Trans::Yes, c);
  EXPECT_MATRIX_NEAR(c, orig, 1e-12);
}

}  // namespace
}  // namespace dqmc::linalg
