#include "linalg/norms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(Norms, FrobeniusOfKnownMatrix) {
  Matrix a(2, 2, {1, 2, 2, 4});  // sum of squares = 25
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(Norms, FrobeniusHandlesHugeEntries) {
  Matrix a(1, 2, {1e200, 1e200});
  EXPECT_NEAR(frobenius_norm(a), std::sqrt(2.0) * 1e200, 1e187);
}

TEST(Norms, MaxAbs) {
  Matrix a(2, 2, {1, -9, 3, 4});
  EXPECT_DOUBLE_EQ(max_abs(a), 9.0);
  EXPECT_DOUBLE_EQ(max_abs(Matrix::zero(3, 3)), 0.0);
}

TEST(Norms, ColumnNormsMatchPerColumnNrm2) {
  MatrixRng rng(103);
  Matrix a = rng.uniform_matrix(37, 23);
  Vector norms = column_norms(a);
  for (idx j = 0; j < 23; ++j) {
    double ss = 0.0;
    for (idx i = 0; i < 37; ++i) ss += a(i, j) * a(i, j);
    EXPECT_NEAR(norms[j], std::sqrt(ss), 1e-13) << j;
  }
}

TEST(Norms, ColumnNormsOnStridedView) {
  MatrixRng rng(107);
  Matrix a = rng.uniform_matrix(10, 10);
  Vector norms = column_norms(a.block(2, 3, 5, 4));
  for (idx j = 0; j < 4; ++j) {
    double ss = 0.0;
    for (idx i = 0; i < 5; ++i) ss += a(2 + i, 3 + j) * a(2 + i, 3 + j);
    EXPECT_NEAR(norms[j], std::sqrt(ss), 1e-13) << j;
  }
}

TEST(Norms, RelativeDifferenceBasics) {
  Matrix a = Matrix::identity(3);
  Matrix b = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(relative_difference(a, b), 0.0);
  b(0, 0) = 1.0 + 1e-10;
  const double rd = relative_difference(b, a);
  EXPECT_NEAR(rd, 1e-10 / std::sqrt(3.0), 1e-16);
}

TEST(Norms, RelativeDifferenceAgainstZeroReference) {
  Matrix a(1, 1, {3.0});
  Matrix z = Matrix::zero(1, 1);
  EXPECT_DOUBLE_EQ(relative_difference(a, z), 3.0);
}

TEST(Norms, RelativeDifferenceShapeMismatchThrows) {
  EXPECT_THROW(relative_difference(Matrix::zero(2, 2), Matrix::zero(2, 3)),
               InvalidArgument);
}

}  // namespace
}  // namespace dqmc::linalg
