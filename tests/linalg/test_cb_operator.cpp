// CbOperator: the structured split-bond appliers against dense references,
// the exact-inverse round trips, the bitwise serial-replay contract the
// backend parity suites build on, and the validate() guards.
#include "linalg/cb_operator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using dqmc::testing::reference_inverse;
using dqmc::testing::reference_matmul;

CbBond bond(idx a, idx b, double t) {
  return {a, b, std::cosh(t), std::sinh(t)};
}

/// n=6, two groups with distinct couplings, and a global diagonal scale —
/// small enough to render densely, structured enough to exercise ordering.
CbOperator make_op() {
  CbOperator op;
  op.n = 6;
  op.diag_scale = 1.3;
  op.groups = {{bond(0, 1, 0.3), bond(2, 3, -0.2), bond(4, 5, 0.15)},
               {bond(1, 2, 0.25), bond(3, 4, 0.4)}};
  op.validate();
  return op;
}

/// Dense rendering of one group factor: identity with the 2x2 hyperbolic
/// rotations inserted at each bond's (a, b) block.
Matrix group_dense(idx n, const std::vector<CbBond>& group) {
  Matrix g = Matrix::identity(n);
  for (const CbBond& b : group) {
    g(b.a, b.a) = b.cosh_t;
    g(b.b, b.b) = b.cosh_t;
    g(b.a, b.b) = b.sinh_t;
    g(b.b, b.a) = b.sinh_t;
  }
  return g;
}

/// B = diag_scale * G_{m-1} * ... * G_0 rendered densely.
Matrix dense_of(const CbOperator& op) {
  Matrix b = Matrix::identity(op.n);
  for (const auto& group : op.groups) {
    b = reference_matmul(group_dense(op.n, group), b);
  }
  for (idx i = 0; i < op.n; ++i) {
    for (idx j = 0; j < op.n; ++j) b(i, j) *= op.diag_scale;
  }
  return b;
}

TEST(CbOperator, CountsBondsAcrossGroups) {
  const CbOperator op = make_op();
  EXPECT_EQ(op.num_groups(), 2);
  EXPECT_EQ(op.num_bonds(), 5);
}

TEST(CbOperator, LeftForwardMatchesDense) {
  const CbOperator op = make_op();
  MatrixRng rng(901);
  Matrix x = rng.uniform_matrix(6, 4);
  const Matrix expected = reference_matmul(dense_of(op), x);
  cb_apply(op, CbSide::kLeft, false, x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-13);
}

TEST(CbOperator, LeftInverseMatchesDenseInverse) {
  const CbOperator op = make_op();
  MatrixRng rng(902);
  Matrix x = rng.uniform_matrix(6, 4);
  const Matrix expected = reference_matmul(reference_inverse(dense_of(op)), x);
  cb_apply(op, CbSide::kLeft, true, x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-13);
}

TEST(CbOperator, RightForwardMatchesDenseOnNonSquareOperand) {
  const CbOperator op = make_op();
  MatrixRng rng(903);
  Matrix x = rng.uniform_matrix(3, 6);  // rows != n: only cols must match
  const Matrix expected = reference_matmul(x, dense_of(op));
  cb_apply(op, CbSide::kRight, false, x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-13);
}

TEST(CbOperator, RightInverseMatchesDenseInverse) {
  const CbOperator op = make_op();
  MatrixRng rng(904);
  Matrix x = rng.uniform_matrix(3, 6);
  const Matrix expected = reference_matmul(x, reference_inverse(dense_of(op)));
  cb_apply(op, CbSide::kRight, true, x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-13);
}

TEST(CbOperator, ForwardInverseRoundTripsBothSides) {
  const CbOperator op = make_op();
  MatrixRng rng(905);
  for (const CbSide side : {CbSide::kLeft, CbSide::kRight}) {
    Matrix x = side == CbSide::kLeft ? rng.uniform_matrix(6, 5)
                                     : rng.uniform_matrix(5, 6);
    const Matrix orig = x;
    cb_apply(op, side, false, x);
    cb_apply(op, side, true, x);
    EXPECT_MATRIX_NEAR(x, orig, 1e-13);
    cb_apply(op, side, true, x);
    cb_apply(op, side, false, x);
    EXPECT_MATRIX_NEAR(x, orig, 1e-13);
  }
}

// The determinism contract: the parallel appliers must reproduce a plain
// serial replay of the same per-column / per-row chains BIT FOR BIT — this
// is what makes structured results independent of the thread budget.
TEST(CbOperator, LeftApplyIsBitwiseSerialReplay) {
  const CbOperator op = make_op();
  MatrixRng rng(906);
  Matrix x = rng.uniform_matrix(6, 33);  // > grain: several parallel chunks
  Matrix ref = x;
  for (idx j = 0; j < ref.cols(); ++j) {
    for (const auto& group : op.groups) {
      for (const CbBond& b : group) {
        const double na = b.cosh_t * ref(b.a, j) + b.sinh_t * ref(b.b, j);
        const double nb = b.sinh_t * ref(b.a, j) + b.cosh_t * ref(b.b, j);
        ref(b.a, j) = na;
        ref(b.b, j) = nb;
      }
    }
    for (idx i = 0; i < ref.rows(); ++i) ref(i, j) *= op.diag_scale;
  }
  cb_apply(op, CbSide::kLeft, false, x);
  for (idx i = 0; i < x.rows(); ++i) {
    for (idx j = 0; j < x.cols(); ++j) {
      ASSERT_EQ(x(i, j), ref(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(CbOperator, RightApplyIsBitwiseSerialReplay) {
  const CbOperator op = make_op();
  MatrixRng rng(907);
  Matrix x = rng.uniform_matrix(33, 6);
  Matrix ref = x;
  for (idx i = 0; i < ref.rows(); ++i) {
    for (idx g = op.num_groups() - 1; g >= 0; --g) {
      for (const CbBond& b : op.groups[static_cast<std::size_t>(g)]) {
        const double na = b.cosh_t * ref(i, b.a) + b.sinh_t * ref(i, b.b);
        const double nb = b.sinh_t * ref(i, b.a) + b.cosh_t * ref(i, b.b);
        ref(i, b.a) = na;
        ref(i, b.b) = nb;
      }
    }
    for (idx j = 0; j < ref.cols(); ++j) ref(i, j) *= op.diag_scale;
  }
  cb_apply(op, CbSide::kRight, false, x);
  for (idx i = 0; i < x.rows(); ++i) {
    for (idx j = 0; j < x.cols(); ++j) {
      ASSERT_EQ(x(i, j), ref(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(CbOperator, UnscaledOperatorSkipsTheDiagonalPass) {
  CbOperator op = make_op();
  op.diag_scale = 1.0;
  MatrixRng rng(908);
  Matrix x = rng.uniform_matrix(6, 3);
  const Matrix expected = reference_matmul(dense_of(op), x);
  cb_apply(op, CbSide::kLeft, false, x);
  EXPECT_MATRIX_NEAR(x, expected, 1e-13);
}

TEST(CbOperator, FlopAndByteModelsCountBondsAndScale) {
  const CbOperator op = make_op();
  EXPECT_DOUBLE_EQ(cb_apply_flops(op, 4), 6.0 * 5 * 4 + 6 * 4);
  EXPECT_DOUBLE_EQ(cb_apply_bytes(op, 4), 32.0 * 5 * 4 + 16.0 * 6 * 4);
  CbOperator unscaled = op;
  unscaled.diag_scale = 1.0;
  EXPECT_DOUBLE_EQ(cb_apply_flops(unscaled, 4), 6.0 * 5 * 4);
  EXPECT_DOUBLE_EQ(cb_apply_bytes(unscaled, 4), 32.0 * 5 * 4);
}

TEST(CbOperator, ValidateRejectsMalformedOperators) {
  CbOperator op = make_op();
  op.n = 0;
  EXPECT_THROW(op.validate(), InvalidArgument);

  op = make_op();
  op.diag_scale = 0.0;
  EXPECT_THROW(op.validate(), InvalidArgument);

  op = make_op();
  op.groups[0][0].b = 6;  // out of range
  EXPECT_THROW(op.validate(), InvalidArgument);

  op = make_op();
  op.groups[0][0].b = op.groups[0][0].a;  // self-bond
  EXPECT_THROW(op.validate(), InvalidArgument);

  op = make_op();
  op.groups[1].push_back(bond(2, 5, 0.1));  // 2 already used in group 1
  EXPECT_THROW(op.validate(), InvalidArgument);
}

TEST(CbOperator, ApplyRejectsShapeMismatch) {
  const CbOperator op = make_op();
  Matrix wrong = Matrix::zero(5, 6);
  EXPECT_THROW(cb_apply(op, CbSide::kLeft, false, wrong.view()),
               InvalidArgument);
  Matrix wrong_right = Matrix::zero(6, 5);
  EXPECT_THROW(cb_apply(op, CbSide::kRight, false, wrong_right.view()),
               InvalidArgument);
}

}  // namespace
}  // namespace dqmc::linalg
