#include "linalg/blas1.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dqmc::linalg {
namespace {

TEST(Blas1, DotUnitStride) {
  const double x[] = {1, 2, 3};
  const double y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x, y), 32.0);
}

TEST(Blas1, DotGeneralStride) {
  const double x[] = {1, 0, 2, 0, 3, 0};
  const double y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x, 2, y, 1), 32.0);
}

TEST(Blas1, Nrm2MatchesHandComputation) {
  const double x[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(2, x), 5.0);
}

TEST(Blas1, Nrm2DoesNotOverflow) {
  // Plain sum of squares of 1e200 overflows; scaled nrm2 must not.
  const double x[] = {1e200, 1e200};
  EXPECT_NEAR(nrm2(2, x), std::sqrt(2.0) * 1e200, 1e186);
}

TEST(Blas1, Nrm2DoesNotUnderflow) {
  // (1e-200)^2 underflows to zero; scaled accumulation keeps the value.
  const double x[] = {1e-200, 1e-200};
  EXPECT_NEAR(nrm2(2, x), std::sqrt(2.0) * 1e-200, 1e-214);
}

TEST(Blas1, Nrm2ZeroAndEmpty) {
  const double x[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(nrm2(2, x), 0.0);
  EXPECT_DOUBLE_EQ(nrm2(0, x), 0.0);
}

TEST(Blas1, Asum) {
  const double x[] = {-1.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(asum(3, x), 6.0);
}

TEST(Blas1, ScalScalesInPlace) {
  double x[] = {1.0, -2.0, 3.0};
  scal(3, -2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(Blas1, ScalStrided) {
  double x[] = {1.0, 99.0, 2.0, 99.0};
  scal(2, 10.0, x, 2);
  EXPECT_DOUBLE_EQ(x[0], 10.0);
  EXPECT_DOUBLE_EQ(x[1], 99.0);
  EXPECT_DOUBLE_EQ(x[2], 20.0);
}

TEST(Blas1, AxpyAccumulates) {
  const double x[] = {1.0, 2.0};
  double y[] = {10.0, 20.0};
  axpy(2, 3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Blas1, AxpyAlphaZeroLeavesYUntouched) {
  const double x[] = {1e308, 1e308};  // would pollute if touched
  double y[] = {1.0, 2.0};
  axpy(2, 0.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Blas1, SwapExchangesStridedVectors) {
  double x[] = {1, 2, 3};
  double y[] = {4, 5, 6};
  swap(3, x, 1, y, 1);
  EXPECT_DOUBLE_EQ(x[0], 4);
  EXPECT_DOUBLE_EQ(y[2], 3);
}

TEST(Blas1, IamaxFindsLargestMagnitude) {
  const double x[] = {1.0, -7.0, 3.0};
  EXPECT_EQ(iamax(3, x), 1);
  EXPECT_EQ(iamax(0, x), 0);
}

TEST(Blas1, IamaxReturnsFirstOnTies) {
  const double x[] = {2.0, -2.0, 2.0};
  EXPECT_EQ(iamax(3, x), 0);
}

}  // namespace
}  // namespace dqmc::linalg
