#include "linalg/qrp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::orthogonality_defect;
using testing::reference_matmul;

class QrpShapes : public ::testing::TestWithParam<idx> {};

TEST_P(QrpShapes, ReconstructsPermutedMatrix) {
  const idx n = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n) * 7919);
  Matrix a = rng.uniform_matrix(n, n);

  QRPFactorization f = qrp_factor(a);
  f.jpvt.check_valid();

  // Rebuild Q from the factored layout via the unpivoted helpers.
  QRFactorization qf{f.factors, f.tau};
  Matrix q = qr_q(qf);
  Matrix r = qr_r(qf);
  EXPECT_LE(orthogonality_defect(q), 1e-13 * n);

  // Q*R must equal A*P.
  Matrix ap(n, n);
  apply_permutation(a, f.jpvt, ap);
  Matrix qr = reference_matmul(q, r);
  EXPECT_MATRIX_NEAR(qr, ap, 1e-12 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrpShapes, ::testing::Values(1, 2, 8, 17, 40, 96));

TEST(Qrp, DiagonalOfRIsNonIncreasing) {
  MatrixRng rng(31);
  Matrix a = rng.uniform_matrix(50, 50);
  QRPFactorization f = qrp_factor(a);
  for (idx i = 1; i < 50; ++i) {
    EXPECT_LE(std::fabs(f.factors(i, i)), std::fabs(f.factors(i - 1, i - 1)) + 1e-12)
        << "graded property violated at " << i;
  }
}

TEST(Qrp, FirstPivotIsLargestColumn) {
  Matrix a = Matrix::zero(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 100.0;  // column 1 has the largest norm
  a(2, 2) = 10.0;
  a(3, 3) = 0.1;
  QRPFactorization f = qrp_factor(a);
  EXPECT_EQ(f.jpvt[0], 1);
}

TEST(Qrp, RankDeficientMatrixTrailingDiagonalIsZero) {
  // Rank-2 matrix of size 6: R(2,2) onward must vanish.
  MatrixRng rng(41);
  Matrix u = rng.uniform_matrix(6, 2);
  Matrix v = rng.uniform_matrix(2, 6);
  Matrix a = reference_matmul(u, v);
  QRPFactorization f = qrp_factor(a);
  for (idx i = 2; i < 6; ++i)
    EXPECT_NEAR(f.factors(i, i), 0.0, 1e-12) << i;
}

TEST(Qrp, GradedMatrixNeedsAlmostNoPivoting) {
  // The paper's key observation: on a strongly column-graded matrix the QRP
  // permutation is (nearly) the identity.
  MatrixRng rng(43);
  Matrix a = rng.graded_matrix(30, 0.1);
  QRPFactorization f = qrp_factor(a);
  EXPECT_LE(f.jpvt.displacement(), 4) << "graded matrix should barely pivot";
}

TEST(Prepivot, SortsColumnsByDescendingNorm) {
  Matrix a = Matrix::zero(3, 4);
  a(0, 0) = 1.0;   // norm 1
  a(0, 1) = 5.0;   // norm 5
  a(0, 2) = 3.0;   // norm 3
  a(0, 3) = 4.0;   // norm 4
  Permutation p = prepivot_permutation(a);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 3);
  EXPECT_EQ(p[2], 2);
  EXPECT_EQ(p[3], 0);
}

TEST(Prepivot, StableOnTies) {
  Matrix a = Matrix::zero(2, 3);
  a(0, 0) = 2.0;
  a(0, 1) = 2.0;
  a(0, 2) = 2.0;
  Permutation p = prepivot_permutation(a);
  EXPECT_TRUE(p.is_identity());
}

TEST(Prepivot, IdentityOnAlreadyGradedMatrix) {
  MatrixRng rng(47);
  Matrix a = rng.graded_matrix(20, 0.2);
  Permutation p = prepivot_permutation(a);
  // Gaussian columns scaled by 0.2^j: ordering violations are possible in
  // principle but vanishingly rare at this grading.
  EXPECT_LE(p.displacement(), 2);
}

TEST(Prepivot, MatchesQrpPivotSequenceOnStronglyGradedMatrix) {
  // On a strongly graded matrix, pre-pivoting and true QRP choose the same
  // first pivot and a near-identical permutation — the Fig. 2 rationale.
  MatrixRng rng(53);
  Matrix a = rng.graded_matrix(16, 0.01);
  Permutation pre = prepivot_permutation(a);
  QRPFactorization f = qrp_factor(a);
  EXPECT_EQ(pre[0], f.jpvt[0]);
}

}  // namespace
}  // namespace dqmc::linalg
