// Mixed-radix FFT plans: naive-DFT oracle over every radix mix the lattice
// edge lengths exercise (powers of two, 3- and 5-smooth sizes, bare
// primes), round trips, Hermitian symmetry of real inputs, and the
// repo-wide determinism contract — batched results bitwise equal to
// single-signal runs at every thread count.
#include "linalg/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dqmc/rng.h"
#include "parallel/topology.h"

namespace dqmc::linalg {
namespace {

struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::vector<Cplx> random_signal(core::Rng& rng, idx n) {
  std::vector<Cplx> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    v.re = rng.uniform() - 0.5;
    v.im = rng.uniform() - 0.5;
  }
  return x;
}

/// O(n^2) reference DFT, the oracle every plan is judged against.
std::vector<Cplx> naive_dft(const std::vector<Cplx>& x, bool inverse) {
  const idx n = static_cast<idx>(x.size());
  std::vector<Cplx> out(x.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (idx k = 0; k < n; ++k) {
    double re = 0.0, im = 0.0;
    for (idx t = 0; t < n; ++t) {
      const double theta = sign * kTwoPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      const double c = std::cos(theta), s = std::sin(theta);
      re += x[static_cast<std::size_t>(t)].re * c -
            x[static_cast<std::size_t>(t)].im * s;
      im += x[static_cast<std::size_t>(t)].re * s +
            x[static_cast<std::size_t>(t)].im * c;
    }
    if (inverse) {
      re /= static_cast<double>(n);
      im /= static_cast<double>(n);
    }
    out[static_cast<std::size_t>(k)] = {re, im};
  }
  return out;
}

void expect_cplx_near(const std::vector<Cplx>& a, const std::vector<Cplx>& b,
                      double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].re, b[i].re, tol) << "re at " << i;
    EXPECT_NEAR(a[i].im, b[i].im, tol) << "im at " << i;
  }
}

// Sizes covering every kernel: radix-2 chains, mixed 2/3, pure 3, 2/5,
// 3/5, squares of odd primes, and bare primes > 5 (generic kernel).
const idx kSizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 25};

TEST(FftPlan, MatchesNaiveDftForward) {
  core::Rng rng(11);
  for (const idx n : kSizes) {
    FftPlan plan(n);
    ASSERT_EQ(plan.size(), n);
    const std::vector<Cplx> x = random_signal(rng, n);
    std::vector<Cplx> got(x.size());
    plan.forward(x.data(), got.data());
    expect_cplx_near(got, naive_dft(x, false), 1e-12 * std::max<idx>(n, 1));
  }
}

TEST(FftPlan, MatchesNaiveDftInverse) {
  core::Rng rng(13);
  for (const idx n : kSizes) {
    FftPlan plan(n);
    const std::vector<Cplx> x = random_signal(rng, n);
    std::vector<Cplx> got(x.size());
    plan.inverse(x.data(), got.data());
    expect_cplx_near(got, naive_dft(x, true), 1e-12);
  }
}

TEST(FftPlan, RoundTripRecoversInput) {
  core::Rng rng(17);
  for (const idx n : kSizes) {
    FftPlan plan(n);
    const std::vector<Cplx> x = random_signal(rng, n);
    std::vector<Cplx> hat(x.size()), back(x.size());
    plan.forward(x.data(), hat.data());
    plan.inverse(hat.data(), back.data());
    expect_cplx_near(back, x, 1e-13 * std::max<idx>(n, 1));
  }
}

TEST(FftPlan, RealInputHasHermitianSpectrum) {
  core::Rng rng(19);
  for (const idx n : kSizes) {
    FftPlan plan(n);
    std::vector<Cplx> x = random_signal(rng, n);
    for (auto& v : x) v.im = 0.0;
    std::vector<Cplx> hat(x.size());
    plan.forward(x.data(), hat.data());
    // X[n - k] = conj(X[k]) for real inputs.
    for (idx k = 0; k < n; ++k) {
      const idx kc = (n - k) % n;
      EXPECT_NEAR(hat[static_cast<std::size_t>(k)].re,
                  hat[static_cast<std::size_t>(kc)].re, 1e-12);
      EXPECT_NEAR(hat[static_cast<std::size_t>(k)].im,
                  -hat[static_cast<std::size_t>(kc)].im, 1e-12);
    }
  }
}

TEST(Fft2, MatchesNaive2dDft) {
  core::Rng rng(23);
  // Odd x even, odd x odd, and a bare-prime edge.
  const std::pair<idx, idx> shapes[] = {{4, 4}, {6, 4}, {3, 5}, {7, 3}, {5, 5}};
  for (const auto& [nx, ny] : shapes) {
    Fft2 plan(nx, ny);
    ASSERT_EQ(plan.size(), nx * ny);
    std::vector<Cplx> plane = random_signal(rng, nx * ny);
    const std::vector<Cplx> orig = plane;
    Fft2::Workspace ws;
    plan.forward(plane.data(), ws);
    for (idx ky = 0; ky < ny; ++ky) {
      for (idx kx = 0; kx < nx; ++kx) {
        double re = 0.0, im = 0.0;
        for (idx y = 0; y < ny; ++y) {
          for (idx x = 0; x < nx; ++x) {
            const double theta =
                -kTwoPi * (static_cast<double>(kx * x) / static_cast<double>(nx) +
                           static_cast<double>(ky * y) / static_cast<double>(ny));
            const Cplx& v = orig[static_cast<std::size_t>(x + nx * y)];
            re += v.re * std::cos(theta) - v.im * std::sin(theta);
            im += v.re * std::sin(theta) + v.im * std::cos(theta);
          }
        }
        const Cplx& got = plane[static_cast<std::size_t>(kx + nx * ky)];
        EXPECT_NEAR(got.re, re, 1e-11) << nx << "x" << ny;
        EXPECT_NEAR(got.im, im, 1e-11) << nx << "x" << ny;
      }
    }
  }
}

TEST(Fft2, RoundTripRecoversPlane) {
  core::Rng rng(29);
  Fft2 plan(6, 5);
  std::vector<Cplx> plane = random_signal(rng, plan.size());
  const std::vector<Cplx> orig = plane;
  Fft2::Workspace ws;
  plan.forward(plane.data(), ws);
  plan.inverse(plane.data(), ws);
  for (std::size_t i = 0; i < plane.size(); ++i) {
    EXPECT_NEAR(plane[i].re, orig[i].re, 1e-12);
    EXPECT_NEAR(plane[i].im, orig[i].im, 1e-12);
  }
}

TEST(FftBatched, BitwiseEqualsSingleSignalRuns) {
  core::Rng rng(31);
  const idx n = 12, count = 9, stride = n + 3;
  FftPlan plan(n);
  std::vector<Cplx> in(static_cast<std::size_t>(count * stride));
  for (auto& v : in) {
    v.re = rng.uniform() - 0.5;
    v.im = rng.uniform() - 0.5;
  }
  std::vector<Cplx> batched(in.size()), single(in.size());
  fft_batched(plan, false, in.data(), batched.data(), count, stride);
  for (idx s = 0; s < count; ++s) {
    plan.forward(in.data() + s * stride, single.data() + s * stride);
  }
  for (idx s = 0; s < count; ++s) {
    for (idx t = 0; t < n; ++t) {
      const std::size_t at = static_cast<std::size_t>(s * stride + t);
      EXPECT_EQ(batched[at].re, single[at].re);
      EXPECT_EQ(batched[at].im, single[at].im);
    }
  }
}

TEST(FftBatched, BitwiseIdenticalAcrossThreadCounts) {
  const idx n = 15, count = 16;
  FftPlan plan(n);
  core::Rng rng(37);
  std::vector<Cplx> in(static_cast<std::size_t>(count * n));
  for (auto& v : in) {
    v.re = rng.uniform() - 0.5;
    v.im = rng.uniform() - 0.5;
  }
  std::vector<Cplx> base(in.size());
  {
    ThreadCountGuard guard(1);
    fft_batched(plan, true, in.data(), base.data(), count, n);
  }
  for (const int threads : {2, 3, 8}) {
    ThreadCountGuard guard(threads);
    std::vector<Cplx> got(in.size());
    fft_batched(plan, true, in.data(), got.data(), count, n);
    ASSERT_EQ(0, std::memcmp(got.data(), base.data(),
                             got.size() * sizeof(Cplx)))
        << "thread count " << threads;
  }
}

TEST(Fft2Batched, BitwiseIdenticalAcrossThreadCounts) {
  Fft2 plan(6, 4);
  const idx count = 11, stride = plan.size();
  core::Rng rng(41);
  std::vector<Cplx> in(static_cast<std::size_t>(count * stride));
  for (auto& v : in) {
    v.re = rng.uniform() - 0.5;
    v.im = rng.uniform() - 0.5;
  }
  std::vector<Cplx> base = in;
  {
    ThreadCountGuard guard(1);
    fft2_batched(plan, false, base.data(), count, stride);
  }
  for (const int threads : {2, 5}) {
    ThreadCountGuard guard(threads);
    std::vector<Cplx> got = in;
    fft2_batched(plan, false, got.data(), count, stride);
    ASSERT_EQ(0, std::memcmp(got.data(), base.data(),
                             got.size() * sizeof(Cplx)))
        << "thread count " << threads;
  }
}

}  // namespace
}  // namespace dqmc::linalg
