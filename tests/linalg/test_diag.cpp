#include "linalg/diag.h"

#include <gtest/gtest.h>

#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

TEST(Diag, ScaleRows) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const double d[] = {10, 100};
  scale_rows(d, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 10);
  EXPECT_DOUBLE_EQ(a(0, 1), 20);
  EXPECT_DOUBLE_EQ(a(1, 0), 300);
  EXPECT_DOUBLE_EQ(a(1, 1), 400);
}

TEST(Diag, ScaleCols) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const double d[] = {10, 100};
  scale_cols(d, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 10);
  EXPECT_DOUBLE_EQ(a(0, 1), 200);
  EXPECT_DOUBLE_EQ(a(1, 0), 30);
  EXPECT_DOUBLE_EQ(a(1, 1), 400);
}

TEST(Diag, ScaleRowsColsInvMatchesComposition) {
  MatrixRng rng(109);
  Matrix a = rng.uniform_matrix(9, 9);
  Matrix b = a;
  Vector r(9), c(9);
  for (idx i = 0; i < 9; ++i) {
    r[i] = rng.uniform(0.5, 2.0);
    c[i] = rng.uniform(0.5, 2.0);
  }
  scale_rows_cols_inv(r.data(), c.data(), a);

  scale_rows(r.data(), b);
  Vector cinv = reciprocal(c);
  scale_cols(cinv.data(), b);
  EXPECT_MATRIX_NEAR(a, b, 1e-14);
}

TEST(Diag, ScaleRowsIntoLeavesSourceIntact) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix out(2, 2);
  const double d[] = {2, 3};
  scale_rows_into(d, a, out);
  EXPECT_DOUBLE_EQ(a(0, 0), 1);
  EXPECT_DOUBLE_EQ(out(0, 0), 2);
  EXPECT_DOUBLE_EQ(out(1, 1), 12);
}

TEST(Diag, DiagonalExtraction) {
  Matrix a(2, 2, {5, 1, 2, 7});
  Vector d = diagonal(a);
  EXPECT_DOUBLE_EQ(d[0], 5);
  EXPECT_DOUBLE_EQ(d[1], 7);
  EXPECT_THROW(diagonal(Matrix::zero(2, 3)), InvalidArgument);
}

TEST(Diag, ReciprocalChecksZero) {
  Vector d{2.0, 4.0};
  Vector r = reciprocal(d);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.25);
  Vector z{1.0, 0.0};
  EXPECT_THROW(reciprocal(z), InvalidArgument);
}

TEST(Diag, LargeMatrixThreadedPathIsCorrect) {
  // Exercise the parallel branch (cols >> grain).
  MatrixRng rng(113);
  Matrix a = rng.uniform_matrix(64, 300);
  Matrix ref = a;
  Vector d(64);
  for (idx i = 0; i < 64; ++i) d[i] = rng.uniform(0.1, 2.0);
  scale_rows(d.data(), a);
  for (idx j = 0; j < 300; ++j)
    for (idx i = 0; i < 64; ++i)
      ASSERT_DOUBLE_EQ(a(i, j), ref(i, j) * d[i]);
}

}  // namespace
}  // namespace dqmc::linalg
