// One-sided Jacobi SVD: the factorization contract (orthonormal u,
// descending positive sigma, orthogonal vt, exact reconstruction), the
// high-RELATIVE-accuracy claim on graded matrices that justifies using it
// inside the SVD-stack stabilizer, and the bitwise determinism the rest of
// the hot path assumes.
#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "linalg/blas3.h"
#include "linalg/norms.h"
#include "linalg/qr.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

Matrix reconstruct(const SVDecomposition& f) {
  Matrix us = f.u;
  for (idx j = 0; j < us.cols(); ++j) {
    for (idx i = 0; i < us.rows(); ++i) us(i, j) *= f.sigma[j];
  }
  Matrix out(us.rows(), f.vt.cols());
  gemm(Trans::No, Trans::No, 1.0, us.view(), f.vt.view(), 0.0, out.view());
  return out;
}

void expect_orthonormal_columns(const Matrix& m, double tol) {
  Matrix gram(m.cols(), m.cols());
  gemm(Trans::Yes, Trans::No, 1.0, m.view(), m.view(), 0.0, gram.view());
  Matrix ident = Matrix::identity(m.cols());
  EXPECT_LE(testing::max_abs_diff(gram, ident), tol);
}

TEST(Svd, FactorsARandomSquareMatrix) {
  MatrixRng rng(101);
  Matrix a = rng.uniform_matrix(12, 12);
  SVDecomposition f = svd(a.view());
  expect_orthonormal_columns(f.u, 1e-12);
  expect_orthonormal_columns(f.vt, 1e-12);
  for (idx i = 0; i + 1 < f.sigma.size(); ++i) {
    EXPECT_GE(f.sigma[i], f.sigma[i + 1]);
  }
  EXPECT_GT(f.sigma[f.sigma.size() - 1], 0.0);
  EXPECT_LE(relative_difference(reconstruct(f), a), 1e-13);
}

TEST(Svd, FactorsATallMatrix) {
  MatrixRng rng(103);
  Matrix a = rng.uniform_matrix(17, 9);
  SVDecomposition f = svd(a.view());
  EXPECT_EQ(f.u.rows(), 17);
  EXPECT_EQ(f.u.cols(), 9);
  EXPECT_EQ(f.sigma.size(), 9);
  EXPECT_EQ(f.vt.rows(), 9);
  expect_orthonormal_columns(f.u, 1e-12);
  EXPECT_LE(relative_difference(reconstruct(f), a), 1e-13);
}

TEST(Svd, RecoversAKnownDiagonal) {
  // A diagonal matrix is its own SVD up to column signs/order.
  Matrix a = Matrix::zero(6, 6);
  const double vals[] = {9.0, 5.0, 4.0, 2.5, 1.0, 0.125};
  for (idx i = 0; i < 6; ++i) a(i, i) = vals[i];
  SVDecomposition f = svd(a.view());
  for (idx i = 0; i < 6; ++i) {
    EXPECT_NEAR(f.sigma[i], vals[i], 1e-14) << "i=" << i;
  }
}

TEST(Svd, GradedMatrixKeepsRelativeAccuracyOfTinySingularValues) {
  // THE Demmel-Veselic property the SVD stack is built on: for A = Q * D
  // with Q well conditioned and D graded over ~30 orders of magnitude,
  // every sigma — including the tiny ones a bidiagonalization solver would
  // destroy with O(||A||) absolute error — comes out to high RELATIVE
  // accuracy.
  const idx n = 10;
  MatrixRng rng(107);
  Matrix q = rng.uniform_matrix(n, n);
  add_identity(q, 4.0);  // well conditioned, far from orthogonal
  SVDecomposition base = svd(q.view());
  std::vector<double> scales(static_cast<std::size_t>(n));
  Matrix a = q;
  for (idx j = 0; j < n; ++j) {
    const double s = std::pow(10.0, -3.0 * static_cast<double>(j));
    scales[static_cast<std::size_t>(j)] = s;
    for (idx i = 0; i < n; ++i) a(i, j) *= s;
  }
  SVDecomposition f = svd(a.view());
  // Exact reference: sigma of A are NOT sigma(Q)*scale in general, but the
  // reconstruction must match A to relative accuracy AND the smallest
  // sigma must live near scale[n-1]*sigma_min(Q), i.e. survive at ~1e-27
  // instead of drowning at ~||A||*eps ~ 1e-16.
  EXPECT_LE(relative_difference(reconstruct(f), a), 1e-12);
  const double smallest = f.sigma[n - 1];
  const double qmin = base.sigma[n - 1];
  const double qmax = base.sigma[0];
  EXPECT_GE(smallest, scales[static_cast<std::size_t>(n - 1)] * qmin * 0.1);
  EXPECT_LE(smallest, scales[static_cast<std::size_t>(n - 1)] * qmax * 10.0);
}

TEST(Svd, HandlesScalesBeyondSquaredOverflow) {
  // Column norms are computed with scaled sums of squares: a column of
  // magnitude 1e200 (whose square overflows) must still factor.
  Matrix a = Matrix::identity(4);
  a(0, 0) = 1e200;
  a(1, 1) = 1.0;
  a(2, 2) = 1e-180;
  a(3, 3) = 1e-200;
  SVDecomposition f = svd(a.view());
  EXPECT_NEAR(f.sigma[0] / 1e200, 1.0, 1e-13);
  EXPECT_NEAR(f.sigma[3] / 1e-200, 1.0, 1e-13);
}

TEST(Svd, IsBitwiseDeterministic) {
  MatrixRng rng(109);
  Matrix a = rng.uniform_matrix(14, 14);
  SVDecomposition f1 = svd(a.view());
  SVDecomposition f2 = svd(a.view());
  EXPECT_EQ(testing::max_abs_diff(f1.u, f2.u), 0.0);
  EXPECT_EQ(testing::max_abs_diff(f1.vt, f2.vt), 0.0);
  for (idx i = 0; i < f1.sigma.size(); ++i) {
    EXPECT_EQ(f1.sigma[i], f2.sigma[i]);
  }
}

TEST(Svd, RejectsWideAndSingularInput) {
  MatrixRng rng(113);
  Matrix wide = rng.uniform_matrix(3, 5);
  EXPECT_THROW(svd(wide.view()), InvalidArgument);
  Matrix singular = Matrix::zero(4, 4);
  singular(0, 0) = 1.0;  // rank 1: three exact zero singular values
  EXPECT_THROW(svd(singular.view()), NumericalError);
}

}  // namespace
}  // namespace dqmc::linalg
