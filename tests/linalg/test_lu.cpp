#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.h"
#include "linalg/util.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

using testing::reference_inverse;
using testing::reference_matmul;

class LuSizes : public ::testing::TestWithParam<std::tuple<idx, idx>> {};

TEST_P(LuSizes, SolveReturnsTrueSolution) {
  const auto [n, block] = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n * 100 + block));
  Matrix a = rng.uniform_matrix(n, n);
  add_identity(a, static_cast<double>(n));  // diagonally dominant => well conditioned

  Matrix x_true = rng.uniform_matrix(n, 3);
  Matrix b = reference_matmul(a, x_true);

  LUFactorization f = lu_factor(a, block);
  lu_solve(f, Trans::No, b);
  EXPECT_MATRIX_NEAR(b, x_true, 1e-10);
}

TEST_P(LuSizes, TransposeSolve) {
  const auto [n, block] = GetParam();
  MatrixRng rng(static_cast<std::uint64_t>(n * 100 + block + 1));
  Matrix a = rng.uniform_matrix(n, n);
  add_identity(a, static_cast<double>(n));

  Matrix x_true = rng.uniform_matrix(n, 2);
  Matrix at = transpose(a);
  Matrix b = reference_matmul(at, x_true);

  LUFactorization f = lu_factor(a, block);
  lu_solve(f, Trans::Yes, b);
  EXPECT_MATRIX_NEAR(b, x_true, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, LuSizes,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 33, 80),
                       ::testing::Values(1, 8, 32)));

TEST(Lu, InverseMatchesReference) {
  MatrixRng rng(61);
  Matrix a = rng.uniform_matrix(24, 24);
  add_identity(a, 8.0);
  Matrix inv = inverse(a);
  Matrix ref = reference_inverse(a);
  EXPECT_MATRIX_NEAR(inv, ref, 1e-11);
  // A * inv(A) == I.
  Matrix prod = reference_matmul(a, inv);
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(24), 1e-11);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a = Matrix::zero(3, 3);
  a(0, 0) = 1.0;  // rank 1
  EXPECT_THROW(lu_factor(a), NumericalError);
}

TEST(Lu, NonSquareThrows) {
  Matrix a = Matrix::zero(3, 4);
  EXPECT_THROW(lu_factor(a), InvalidArgument);
}

TEST(Lu, LogDetMatchesKnownDeterminant) {
  // det of a 2x2: ad - bc.
  Matrix a(2, 2, {3, 1, 4, 2});  // det = 2
  LogDet d = lu_logdet(lu_factor(a));
  EXPECT_EQ(d.sign, 1);
  EXPECT_NEAR(d.log_abs, std::log(2.0), 1e-13);

  Matrix b(2, 2, {1, 2, 3, 4});  // det = -2
  LogDet db = lu_logdet(lu_factor(b));
  EXPECT_EQ(db.sign, -1);
  EXPECT_NEAR(db.log_abs, std::log(2.0), 1e-13);
}

TEST(Lu, LogDetOfOrthogonalIsZero) {
  MatrixRng rng(67);
  Matrix q = rng.orthogonal_matrix(20);
  LogDet d = lu_logdet(lu_factor(q));
  EXPECT_NEAR(d.log_abs, 0.0, 1e-11);
  EXPECT_TRUE(d.sign == 1 || d.sign == -1);
}

TEST(Lu, PivotingHandlesZeroLeadingElement) {
  Matrix a(2, 2, {0, 1, 1, 0});  // needs a row swap
  LUFactorization f = lu_factor(a);
  Matrix inv = lu_inverse(f);
  EXPECT_MATRIX_NEAR(inv, a, 1e-14);  // this permutation is its own inverse
  EXPECT_EQ(f.pivot_sign, -1);
}

TEST(Lu, BlockedAndUnblockedAgree) {
  MatrixRng rng(71);
  Matrix a = rng.uniform_matrix(50, 50);
  add_identity(a, 10.0);
  Matrix i1 = lu_inverse(lu_factor(a, 1));
  Matrix i2 = lu_inverse(lu_factor(a, 32));
  EXPECT_MATRIX_NEAR(i1, i2, 1e-12);
}

}  // namespace
}  // namespace dqmc::linalg
