// gemm_batched: every item of a batch must be BITWISE identical to a plain
// gemm() call on the same operands — that is the contract the walker-crowd
// path leans on for trajectory determinism. "Close" is not tested anywhere
// here; every comparison is exact down to the IEEE-754 bit pattern.
#include "linalg/blas3.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <tuple>
#include <vector>

#include "linalg/util.h"
#include "parallel/topology.h"
#include "testing/test_utils.h"

namespace dqmc::linalg {
namespace {

struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

void expect_bitwise_equal(ConstMatrixView a, ConstMatrixView b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a(i, j)),
                std::bit_cast<std::uint64_t>(b(i, j)))
          << what << " differs at (" << i << ", " << j << ")";
    }
  }
}

/// Run one batched case against per-item gemm() on identical inputs.
/// shared_a / shared_b select the single-operand ("walker crowd") forms.
void run_case(bool ta, bool tb, idx m, idx n, idx k, idx count, bool shared_a,
              bool shared_b, double alpha, double beta) {
  const Trans transa = ta ? Trans::Yes : Trans::No;
  const Trans transb = tb ? Trans::Yes : Trans::No;
  MatrixRng rng(static_cast<std::uint64_t>(
      m * 1009 + n * 131 + k * 17 + count * 7 + (ta ? 3 : 0) + (tb ? 1 : 0)));

  const idx na = shared_a ? 1 : count;
  const idx nb = shared_b ? 1 : count;
  std::vector<Matrix> a, b, batched, solo;
  for (idx i = 0; i < na; ++i) {
    a.push_back(ta ? rng.uniform_matrix(k, m) : rng.uniform_matrix(m, k));
  }
  for (idx i = 0; i < nb; ++i) {
    b.push_back(tb ? rng.uniform_matrix(n, k) : rng.uniform_matrix(k, n));
  }
  for (idx i = 0; i < count; ++i) {
    batched.push_back(rng.uniform_matrix(m, n));
    solo.push_back(batched.back());
  }

  std::vector<ConstMatrixView> av(a.begin(), a.end());
  std::vector<ConstMatrixView> bv(b.begin(), b.end());
  std::vector<MatrixView> cv(batched.begin(), batched.end());
  gemm_batched(transa, transb, alpha, av, bv, beta, cv);

  for (idx i = 0; i < count; ++i) {
    const Matrix& ai = a[static_cast<std::size_t>(shared_a ? 0 : i)];
    const Matrix& bi = b[static_cast<std::size_t>(shared_b ? 0 : i)];
    gemm(transa, transb, alpha, ai, bi, beta,
         solo[static_cast<std::size_t>(i)]);
    expect_bitwise_equal(batched[static_cast<std::size_t>(i)],
                         solo[static_cast<std::size_t>(i)],
                         "item " + std::to_string(i));
  }
}

/// Shapes straddling the micro-kernel tile (8x6) and the cache-block
/// boundaries, all four trans combinations, batch sizes around the 2W
/// walker-crowd shapes.
class GemmBatchedSweep
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<idx, idx, idx>, bool, bool, idx>> {};

TEST_P(GemmBatchedSweep, EveryItemBitwiseMatchesGemm) {
  const auto [shape, ta, tb, count] = GetParam();
  const auto [m, n, k] = shape;
  run_case(ta, tb, m, n, k, count, false, false, 1.0, 0.0);
}

TEST_P(GemmBatchedSweep, SharedOperandsBitwiseMatchGemm) {
  const auto [shape, ta, tb, count] = GetParam();
  const auto [m, n, k] = shape;
  // The crowd wrap uses a shared LEFT operand (B * G_i) and a shared RIGHT
  // operand (T_i * Binv) in its two passes; cover both plus alpha/beta.
  run_case(ta, tb, m, n, k, count, /*shared_a=*/true, /*shared_b=*/false,
           1.0, 0.0);
  run_case(ta, tb, m, n, k, count, /*shared_a=*/false, /*shared_b=*/true,
           -0.75, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndFlags, GemmBatchedSweep,
    ::testing::Combine(
        ::testing::Values(std::tuple<idx, idx, idx>{8, 6, 4},
                          std::tuple<idx, idx, idx>{33, 17, 9},
                          std::tuple<idx, idx, idx>{64, 64, 64},
                          std::tuple<idx, idx, idx>{7, 130, 5}),
        ::testing::Bool(), ::testing::Bool(), ::testing::Values(1, 3, 8)));

TEST(GemmBatched, AlphaBetaVariantsStayBitwise) {
  run_case(false, false, 24, 24, 24, 4, false, false, 1.3, 0.7);
  run_case(false, false, 24, 24, 24, 4, false, false, 0.0, 0.4);
  run_case(true, true, 24, 24, 24, 4, true, false, 2.0, -1.0);
}

TEST(GemmBatched, CountOneDelegatesToGemm) {
  run_case(false, true, 19, 23, 31, 1, false, false, 1.1, 0.3);
}

// The packed-buffer contract: results must not depend on the worker count,
// and must stay bitwise equal to the single-threaded per-item gemm (which
// itself is thread-count invariant).
TEST(GemmBatched, ThreadCountInvariantBitwise) {
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    run_case(false, false, 48, 48, 48, 6, true, false, 1.0, 0.0);
    run_case(true, false, 40, 32, 56, 6, false, false, 1.0, 1.0);
  }
}

TEST(GemmBatched, RejectsShapeAndCountMismatches) {
  MatrixRng rng(3);
  Matrix a = rng.uniform_matrix(8, 8);
  Matrix b = rng.uniform_matrix(8, 8);
  Matrix c1 = rng.uniform_matrix(8, 8);
  Matrix c2 = rng.uniform_matrix(8, 8);
  // 2 outputs but 0 inputs / mismatched per-item input counts.
  std::vector<MatrixView> cv{c1, c2};
  EXPECT_THROW(gemm_batched(Trans::No, Trans::No, 1.0, {}, {a, b}, 0.0, cv),
               Error);
  std::vector<ConstMatrixView> one{a};
  std::vector<ConstMatrixView> two{a, b};
  std::vector<MatrixView> empty;
  EXPECT_THROW(gemm_batched(Trans::No, Trans::No, 1.0, two, two, 0.0, empty),
               Error);
}

}  // namespace
}  // namespace dqmc::linalg
