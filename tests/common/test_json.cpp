#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dqmc::obs {
namespace {

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{123456789}).dump(), "123456789");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndChains) {
  Json j = Json::object().set("b", 1).set("a", 2);
  EXPECT_EQ(j.dump(), "{\"b\":1,\"a\":2}");
  j.set("b", 3);  // replace keeps position
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(j.has("z"));
  EXPECT_DOUBLE_EQ(j.at("a").number(), 2.0);
  EXPECT_EQ(j.find("z"), nullptr);
  EXPECT_THROW(j.at("z"), InvalidArgument);
}

TEST(Json, ArrayAccess) {
  Json a = Json::array();
  a.push_back(1);
  a.push_back("two");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0].number(), 1.0);
  EXPECT_EQ(a[1].str(), "two");
  EXPECT_EQ(a.dump(), "[1,\"two\"]");
}

TEST(Json, PrettyPrint) {
  Json j = Json::object().set("k", Json::array());
  EXPECT_EQ(j.dump(2), "{\n  \"k\": []\n}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,true,null,\"s\\u0041\"],\"b\":{\"c\":-3e2}}";
  Json j = Json::parse(text);
  EXPECT_EQ(j.at("a").size(), 5u);
  EXPECT_DOUBLE_EQ(j.at("a")[1].number(), 2.5);
  EXPECT_TRUE(j.at("a")[2].boolean());
  EXPECT_TRUE(j.at("a")[3].is_null());
  EXPECT_EQ(j.at("a")[4].str(), "sA");
  EXPECT_DOUBLE_EQ(j.at("b").at("c").number(), -300.0);
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, ParseAcceptsWhitespace) {
  Json j = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("nul"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"unterminated"), InvalidArgument);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).str(), InvalidArgument);
  EXPECT_THROW(Json("s").number(), InvalidArgument);
  EXPECT_THROW(Json().at("k"), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::obs
