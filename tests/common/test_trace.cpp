#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace dqmc::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.complete("e", "t", 0.0, 1.0);
  tracer.instant("i", "t");
  tracer.counter("c", "t", "v", 1.0);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RecordsCompleteInstantAndCounterEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("span", "cat", 10.0, 5.0, "n", 3.0);
  tracer.instant("mark", "cat");
  tracer.counter("rate", "cat", "value", 7.0);
  EXPECT_EQ(tracer.recorded(), 3u);

  const Json doc = tracer.trace_json();
  const Json& events = doc.at("traceEvents");
  // One thread_name metadata record plus the three events.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].at("ph").str(), "M");
  EXPECT_EQ(events[0].at("name").str(), "thread_name");

  const Json& span = events[1];
  EXPECT_EQ(span.at("name").str(), "span");
  EXPECT_EQ(span.at("ph").str(), "X");
  EXPECT_DOUBLE_EQ(span.at("ts").number(), 10.0);
  EXPECT_DOUBLE_EQ(span.at("dur").number(), 5.0);
  EXPECT_DOUBLE_EQ(span.at("args").at("n").number(), 3.0);

  // Instant events are thread-scoped ("s":"t") per the Chrome format.
  EXPECT_EQ(events[2].at("ph").str(), "i");
  EXPECT_EQ(events[2].at("s").str(), "t");
  EXPECT_EQ(events[3].at("ph").str(), "C");

  EXPECT_DOUBLE_EQ(doc.at("droppedEvents").number(), 0.0);
}

TEST(Tracer, RingBufferOverflowDropsOldest) {
  Tracer tracer;
  tracer.set_buffer_capacity(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.complete("e", "t", static_cast<double>(i), 1.0, "i",
                    static_cast<double>(i));
  }
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  // The survivors are the newest four events, still in order.
  const Json doc = tracer.trace_json();
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 5u);  // metadata + 4
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i + 1)].at("args").at("i").number(),
                     static_cast<double>(6 + i));
  }
  EXPECT_DOUBLE_EQ(doc.at("droppedEvents").number(), 6.0);
}

TEST(Tracer, ConcurrentEmissionFromWorkerThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kTasks = 16;
  constexpr int kEventsPerTask = 200;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kTasks; ++t) {
      threads.emplace_back([&tracer] {
        for (int i = 0; i < kEventsPerTask; ++i) {
          TraceSpan span(tracer, "work", "pool");
          span.arg("i", static_cast<double>(i));
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::size_t>(kTasks * kEventsPerTask));
  EXPECT_EQ(tracer.dropped(), 0u);
  // The export is valid JSON with every event present.
  const Json doc = Json::parse(tracer.json());
  EXPECT_GE(doc.at("traceEvents").size(),
            static_cast<std::size_t>(kTasks * kEventsPerTask));
}

TEST(Tracer, ThreadNamesAppearInMetadata) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_current_thread_name("emitter");
  tracer.instant("e", "t");
  const Json doc = tracer.trace_json();
  const Json& meta = doc.at("traceEvents")[0];
  EXPECT_EQ(meta.at("name").str(), "thread_name");
  EXPECT_EQ(meta.at("args").at("name").str(), "emitter");
}

TEST(Tracer, ResetDropsEventsAndRestartsClock) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("e", "t");
  EXPECT_EQ(tracer.recorded(), 1u);
  tracer.reset();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_GE(tracer.now_us(), 0.0);
}

TEST(Tracer, WriteJsonProducesParsableFile) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("span", "cat", 0.0, 1.0);
  const std::string path = testing::TempDir() + "dqmc_test_trace.json";
  tracer.write_json(path);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const Json doc = Json::parse(text);
  EXPECT_TRUE(doc.at("traceEvents").is_array());
}

TEST(TraceSpan, EmitsOneCompleteEventWithDuration) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span(tracer, "scoped", "cat");
    span.arg("k", 2.0);
  }
  ASSERT_EQ(tracer.recorded(), 1u);
  const Json doc = tracer.trace_json();
  const Json& ev = doc.at("traceEvents")[1];
  EXPECT_EQ(ev.at("name").str(), "scoped");
  EXPECT_GE(ev.at("dur").number(), 0.0);
  EXPECT_DOUBLE_EQ(ev.at("args").at("k").number(), 2.0);
}

TEST(TraceSpan, EnablementCapturedAtConstruction) {
  Tracer tracer;
  {
    TraceSpan span(tracer, "late", "cat");
    tracer.set_enabled(true);  // mid-span enable must not emit a torn event
  }
  EXPECT_EQ(tracer.recorded(), 0u);
}

// Satellite 6 guard: the disabled path must stay O(one atomic load). A
// generous wall-clock bound keeps this robust on loaded CI machines while
// still catching accidental locking or allocation on the disabled path
// (which would be ~100x slower than the ~ns/span this allows).
TEST(TraceSpan, DisabledSpansAreCheap) {
  Tracer tracer;
  Stopwatch watch;
  for (int i = 0; i < 1'000'000; ++i) {
    TraceSpan span(tracer, "noop", "bench");
  }
  EXPECT_LT(watch.seconds(), 1.0);
}

}  // namespace
}  // namespace dqmc::obs
