#include "obs/health.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace dqmc::obs {
namespace {

TEST(HealthMonitor, DisabledRecordsNothing) {
  HealthMonitor mon;
  mon.record_wrap_drift(1.0);
  mon.record_sortedness(0.0);
  mon.record_sign(-1);
  const HealthMonitor::Summary s = mon.summary();
  EXPECT_EQ(s.wrap_drift.count, 0u);
  EXPECT_EQ(s.sortedness.count, 0u);
  EXPECT_EQ(s.sign_samples, 0u);
  EXPECT_EQ(s.violations, 0u);
}

TEST(HealthMonitor, EmptyAverageSignIsOne) {
  EXPECT_DOUBLE_EQ(HealthMonitor::Summary{}.average_sign(), 1.0);
}

TEST(HealthMonitor, WrapDriftThresholdViolation) {
  HealthMonitor mon;
  mon.set_enabled(true);
  HealthThresholds t;
  t.max_wrap_drift = 1e-6;
  mon.set_thresholds(t);

  mon.record_wrap_drift(1e-9);  // fine
  EXPECT_EQ(mon.violations(), 0u);
  mon.record_wrap_drift(1e-3);  // violation
  EXPECT_EQ(mon.violations(), 1u);

  const HealthMonitor::Summary s = mon.summary();
  EXPECT_EQ(s.wrap_drift.count, 2u);
  EXPECT_DOUBLE_EQ(s.wrap_drift.max, 1e-3);
  EXPECT_DOUBLE_EQ(s.wrap_drift.min, 1e-9);
}

TEST(HealthMonitor, SortednessThresholdViolation) {
  HealthMonitor mon;
  mon.set_enabled(true);
  HealthThresholds t;
  t.min_sortedness = 0.75;
  mon.set_thresholds(t);

  mon.record_sortedness(0.95);
  EXPECT_EQ(mon.violations(), 0u);
  mon.record_sortedness(0.40);
  EXPECT_EQ(mon.violations(), 1u);
}

TEST(HealthMonitor, SignWarnsOncePerCrossing) {
  HealthMonitor mon;
  mon.set_enabled(true);
  HealthThresholds t;
  t.min_avg_sign = 0.5;
  t.min_sign_samples = 4;
  mon.set_thresholds(t);

  // 4 positive samples: average 1.0, healthy.
  for (int i = 0; i < 4; ++i) mon.record_sign(+1);
  EXPECT_EQ(mon.violations(), 0u);

  // Drive the average below 0.5: one violation at the crossing, not one
  // per subsequent sample.
  mon.record_sign(-1);  // 3/5 = 0.6
  mon.record_sign(-1);  // 2/6 = 0.33 -> crossing
  mon.record_sign(-1);  // 1/7 -> still low, no new violation
  EXPECT_EQ(mon.violations(), 1u);

  // Recover above threshold, then cross again -> second violation.
  for (int i = 0; i < 5; ++i) mon.record_sign(+1);  // 6/12 = 0.5, healthy
  EXPECT_EQ(mon.violations(), 1u);
  mon.record_sign(-1);  // 5/13 < 0.5 -> second crossing
  EXPECT_EQ(mon.violations(), 2u);
}

TEST(HealthMonitor, ViolationEmitsInstantTraceEvent) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);

  HealthMonitor mon;
  mon.set_enabled(true);
  mon.record_wrap_drift(1.0);  // far above any threshold

  bool found = false;
  const Json events = tracer.trace_json().at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].at("name").str() == "health.wrap_drift_warn") found = true;
  }
  EXPECT_TRUE(found);

  tracer.set_enabled(false);
  tracer.reset();
}

TEST(HealthMonitor, JsonSummaryHasStableKeys) {
  HealthMonitor mon;
  mon.set_enabled(true);
  mon.record_wrap_drift(1e-9);
  mon.record_sortedness(0.9);
  mon.record_sign(+1);

  const Json j = Json::parse(mon.json_value().dump());
  EXPECT_TRUE(j.at("enabled").boolean());
  EXPECT_DOUBLE_EQ(j.at("wrap_drift").at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("sortedness").at("max").number(), 0.9);
  EXPECT_DOUBLE_EQ(j.at("average_sign").number(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("sign_samples").number(), 1.0);
  EXPECT_TRUE(j.has("violations"));
  EXPECT_TRUE(j.at("thresholds").has("max_wrap_drift"));
}

TEST(HealthMonitor, ResetKeepsThresholdsAndEnablement) {
  HealthMonitor mon;
  mon.set_enabled(true);
  HealthThresholds t;
  t.max_wrap_drift = 123.0;
  mon.set_thresholds(t);
  mon.record_wrap_drift(1e3);
  EXPECT_EQ(mon.violations(), 1u);

  mon.reset();
  EXPECT_TRUE(mon.enabled());
  EXPECT_DOUBLE_EQ(mon.thresholds().max_wrap_drift, 123.0);
  EXPECT_EQ(mon.violations(), 0u);
  EXPECT_EQ(mon.summary().wrap_drift.count, 0u);
}

}  // namespace
}  // namespace dqmc::obs
