#include "common/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace dqmc {
namespace {

TEST(Aligned, MallocReturnsAlignedPointer) {
  for (std::size_t bytes : {1u, 7u, 64u, 100u, 4096u}) {
    void* p = aligned_malloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kAlignment, 0u);
    aligned_free(p);
  }
}

TEST(Aligned, ZeroBytesYieldsNull) {
  EXPECT_EQ(aligned_malloc(0), nullptr);
  aligned_free(nullptr);  // must be a no-op
}

TEST(AlignedBuffer, SizeAndAccess) {
  AlignedBuffer<double> buf(10);
  EXPECT_EQ(buf.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) buf[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(buf[i], static_cast<double>(i));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(4);
  a[0] = 42.0;
  double* raw = a.data();
  AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer<double> c(1);
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  EXPECT_EQ(c.size(), 4u);
}

TEST(AlignedBuffer, DefaultConstructedIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace dqmc
