#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dqmc::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, StoresLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(-2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_NEAR(h.mean(), 2.0 / 3.0, 1e-15);
}

TEST(Histogram, IgnoresNonFiniteSamples) {
  Histogram h;
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, CumulativeDecadeBuckets) {
  Histogram h;
  h.observe(0.05);  // decade bucket le = 0.1
  h.observe(0.5);   // le = 1
  h.observe(0.7);   // le = 1
  h.observe(5.0);   // le = 10
  h.observe(1e20);  // overflow bucket
  const Json j = h.json_value();
  const Json& buckets = j.at("buckets");
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_NEAR(buckets[0].at("le").number(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("le").number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("count").number(), 3.0);  // cumulative
  EXPECT_DOUBLE_EQ(buckets[2].at("le").number(), 10.0);
  EXPECT_DOUBLE_EQ(buckets[2].at("count").number(), 4.0);
  EXPECT_EQ(buckets[3].at("le").str(), "inf");
  EXPECT_DOUBLE_EQ(buckets[3].at("count").number(), 5.0);
}

TEST(Histogram, NearestRankQuantiles) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: defined as 0
  for (int i = 100; i >= 1; --i) h.observe(static_cast<double>(i));
  // Nearest-rank over the sorted window {1..100}: rank = floor(q * n).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 51.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 96.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);   // clamped to the last sample
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 100.0);   // out-of-range q clamps
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);
}

TEST(Histogram, QuantileWindowKeepsRecentSamples) {
  Histogram h;
  // Fill the window with large values, then overwrite it completely with
  // small ones: the quantiles must reflect only the recent window.
  for (std::size_t i = 0; i < Histogram::kQuantileWindow; ++i) {
    h.observe(1000.0);
  }
  for (std::size_t i = 0; i < Histogram::kQuantileWindow; ++i) {
    h.observe(1.0);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  // count/sum stay lifetime aggregates; only the quantile window slides.
  EXPECT_EQ(h.count(), 2 * Histogram::kQuantileWindow);
}

TEST(Histogram, JsonIncludesQuantilesOnlyWhenPopulated) {
  Histogram h;
  EXPECT_FALSE(h.json_value().has("p50"));
  h.observe(2.0);
  h.observe(4.0);
  const Json j = h.json_value();
  ASSERT_TRUE(j.has("p50"));
  ASSERT_TRUE(j.has("p95"));
  ASSERT_TRUE(j.has("p99"));
  EXPECT_DOUBLE_EQ(j.at("p50").number(), 4.0);  // rank 1 of sorted {2,4}
  EXPECT_DOUBLE_EQ(j.at("p99").number(), 4.0);
  h.reset();
  EXPECT_FALSE(h.json_value().has("p50"));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // reset clears the window too
}

TEST(MetricsRegistry, DisabledHelpersAreNoOps) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  reg.count("c");
  reg.set("g", 1.0);
  reg.observe("h", 1.0);
  // Nothing was even registered.
  EXPECT_EQ(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_gauge("g"), nullptr);
  EXPECT_EQ(reg.find_histogram("h"), nullptr);
}

TEST(MetricsRegistry, HelpersRecordWhenEnabled) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.count("accepts", 3);
  reg.set("rate", 0.5);
  reg.observe("sizes", 8.0);
  ASSERT_NE(reg.find_counter("accepts"), nullptr);
  EXPECT_EQ(reg.find_counter("accepts")->value(), 3u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("rate")->value(), 0.5);
  EXPECT_EQ(reg.find_histogram("sizes")->count(), 1u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
}

TEST(MetricsRegistry, CrossKindNameCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), InvalidArgument);
  EXPECT_THROW(reg.histogram("name"), InvalidArgument);
  reg.gauge("other");
  EXPECT_THROW(reg.counter("other"), InvalidArgument);
}

TEST(MetricsRegistry, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.count("sweeps", 7);
  reg.set("accept_rate", 0.25);
  reg.observe("flush_rank", 32.0);

  const Json parsed = Json::parse(reg.json());
  EXPECT_DOUBLE_EQ(parsed.at("counters").at("sweeps").number(), 7.0);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("accept_rate").number(), 0.25);
  const Json& h = parsed.at("histograms").at("flush_rank");
  EXPECT_DOUBLE_EQ(h.at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("mean").number(), 32.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.count("c", 5);
  Counter* before = &reg.counter("c");
  reg.reset();
  EXPECT_EQ(reg.find_counter("c")->value(), 0u);
  EXPECT_EQ(&reg.counter("c"), before);
}

TEST(MetricsRegistry, ReportListsEveryMetric) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.count("my.counter");
  reg.set("my.gauge", 1.0);
  reg.observe("my.histogram", 2.0);
  const std::string r = reg.report();
  EXPECT_NE(r.find("my.counter"), std::string::npos);
  EXPECT_NE(r.find("my.gauge"), std::string::npos);
  EXPECT_NE(r.find("my.histogram"), std::string::npos);
}

}  // namespace
}  // namespace dqmc::obs
