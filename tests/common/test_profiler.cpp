#include "common/profiler.h"

#include <gtest/gtest.h>

#include <thread>

namespace dqmc {
namespace {

TEST(Profiler, AccumulatesSecondsAndCalls) {
  Profiler p;
  p.add(Phase::kStratification, 1.0);
  p.add(Phase::kStratification, 2.0);
  p.add(Phase::kWrapping, 1.0);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kStratification), 3.0);
  EXPECT_EQ(p.calls(Phase::kStratification), 2u);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kStratification), 75.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kWrapping), 25.0);
}

TEST(Profiler, EmptyProfilerReportsZero) {
  Profiler p;
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kMeasurement), 0.0);
}

TEST(Profiler, ResetClearsState) {
  Profiler p;
  p.add(Phase::kClustering, 5.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
  EXPECT_EQ(p.calls(Phase::kClustering), 0u);
}

TEST(Profiler, ScopedPhaseRecordsElapsedTime) {
  Profiler p;
  {
    ScopedPhase scope(&p, Phase::kMeasurement);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(p.seconds(Phase::kMeasurement), 0.005);
  EXPECT_EQ(p.calls(Phase::kMeasurement), 1u);
}

TEST(Profiler, NullProfilerScopedPhaseIsSafe) {
  ScopedPhase scope(nullptr, Phase::kOther);  // must not crash
}

TEST(Profiler, ReportContainsPaperPhaseNames) {
  Profiler p;
  p.add(Phase::kDelayedUpdate, 1.0);
  const std::string r = p.report();
  EXPECT_NE(r.find("Delayed rank-1 update"), std::string::npos);
  EXPECT_NE(r.find("Stratification"), std::string::npos);
  EXPECT_NE(r.find("Physical meas."), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(w.seconds(), 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 0.05);
}

TEST(Stopwatch, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(0.002), "2.00 ms");
  EXPECT_EQ(format_seconds(2e-6), "2 us");
}

}  // namespace
}  // namespace dqmc
