#include "common/profiler.h"

#include <gtest/gtest.h>

#include <thread>

namespace dqmc {
namespace {

TEST(Profiler, AccumulatesSecondsAndCalls) {
  Profiler p;
  p.add(Phase::kStratification, 1.0);
  p.add(Phase::kStratification, 2.0);
  p.add(Phase::kWrapping, 1.0);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kStratification), 3.0);
  EXPECT_EQ(p.calls(Phase::kStratification), 2u);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kStratification), 75.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kWrapping), 25.0);
}

TEST(Profiler, EmptyProfilerReportsZero) {
  Profiler p;
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.percent(Phase::kMeasurement), 0.0);
}

TEST(Profiler, ResetClearsState) {
  Profiler p;
  p.add(Phase::kClustering, 5.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
  EXPECT_EQ(p.calls(Phase::kClustering), 0u);
}

TEST(Profiler, ScopedPhaseRecordsElapsedTime) {
  Profiler p;
  {
    ScopedPhase scope(&p, Phase::kMeasurement);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(p.seconds(Phase::kMeasurement), 0.005);
  EXPECT_EQ(p.calls(Phase::kMeasurement), 1u);
}

TEST(Profiler, NullProfilerScopedPhaseIsSafe) {
  ScopedPhase scope(nullptr, Phase::kOther);  // must not crash
}

TEST(Profiler, ReportContainsPaperPhaseNames) {
  Profiler p;
  p.add(Phase::kDelayedUpdate, 1.0);
  const std::string r = p.report();
  EXPECT_NE(r.find("Delayed rank-1 update"), std::string::npos);
  EXPECT_NE(r.find("Stratification"), std::string::npos);
  EXPECT_NE(r.find("Physical meas."), std::string::npos);
}

TEST(Profiler, NestedBracketsBillExclusiveAndInclusive) {
  Profiler p;
  p.begin(Phase::kDelayedUpdate);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  p.begin(Phase::kStratification);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  p.end();
  p.end();

  const double outer_excl = p.seconds(Phase::kDelayedUpdate);
  const double outer_incl = p.inclusive_seconds(Phase::kDelayedUpdate);
  const double inner = p.seconds(Phase::kStratification);

  // The inner bracket's time is inside the outer's inclusive time but
  // subtracted from its exclusive time, so nothing is counted twice.
  EXPECT_GE(inner, 0.005);
  EXPECT_GE(outer_incl, outer_excl + inner - 1e-9);
  EXPECT_LT(outer_excl, outer_incl);
  EXPECT_NEAR(p.total_seconds(), outer_excl + inner, 1e-9);
}

TEST(Profiler, NestedSamePhaseIsNotDoubleCounted) {
  // The real-world shape: DelayedGreens::flush opens a kDelayedUpdate
  // bracket inside metropolis_slice's kDelayedUpdate bracket.
  Profiler p;
  p.begin(Phase::kDelayedUpdate);
  p.begin(Phase::kDelayedUpdate);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  p.end();
  p.end();

  // Exclusive total must be ~the wall time once, not twice.
  EXPECT_LT(p.seconds(Phase::kDelayedUpdate),
            1.5 * p.inclusive_seconds(Phase::kDelayedUpdate) / 2.0 + 0.005);
  EXPECT_EQ(p.calls(Phase::kDelayedUpdate), 2u);
  EXPECT_NEAR(p.total_seconds(), p.seconds(Phase::kDelayedUpdate), 1e-12);
}

TEST(Profiler, MergeSumsPerChainTotals) {
  Profiler a, b;
  a.add(Phase::kStratification, 2.0);
  a.add(Phase::kWrapping, 1.0);
  b.add(Phase::kStratification, 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kStratification), 5.0);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kWrapping), 1.0);
  EXPECT_EQ(a.calls(Phase::kStratification), 2u);
  EXPECT_DOUBLE_EQ(a.percent(Phase::kStratification), 5.0 / 6.0 * 100.0);
  // b is untouched.
  EXPECT_DOUBLE_EQ(b.seconds(Phase::kStratification), 3.0);
}

TEST(Profiler, MergeWithOpenBracketThrows) {
  Profiler a, b;
  b.begin(Phase::kOther);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  b.end();
  a.merge(b);  // fine once closed
}

TEST(Profiler, PercentOfZeroTotalIsZeroForEveryPhase) {
  Profiler p;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    EXPECT_DOUBLE_EQ(p.percent(static_cast<Phase>(i)), 0.0);
  }
}

TEST(Profiler, ScopedPhaseNests) {
  Profiler p;
  {
    ScopedPhase outer(&p, Phase::kDelayedUpdate);
    ScopedPhase inner(&p, Phase::kDelayedUpdate);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Two brackets, but the exclusive total is the elapsed time once.
  EXPECT_EQ(p.calls(Phase::kDelayedUpdate), 2u);
  EXPECT_LT(p.total_seconds(),
            2.0 * p.inclusive_seconds(Phase::kDelayedUpdate));
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(w.seconds(), 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 0.05);
}

TEST(Stopwatch, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(0.002), "2.00 ms");
  EXPECT_EQ(format_seconds(2e-6), "2 us");
}

}  // namespace
}  // namespace dqmc
