#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dqmc {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetVar(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const char* n : names_) ::unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  ::unsetenv("DQMC_TEST_UNSET");
  EXPECT_FALSE(env_string("DQMC_TEST_UNSET").has_value());
}

TEST_F(EnvTest, StringEmptyIsNullopt) {
  SetVar("DQMC_TEST_EMPTY", "");
  EXPECT_FALSE(env_string("DQMC_TEST_EMPTY").has_value());
}

TEST_F(EnvTest, LongParsesAndFallsBack) {
  SetVar("DQMC_TEST_LONG", "42");
  EXPECT_EQ(env_long("DQMC_TEST_LONG", -1), 42);
  SetVar("DQMC_TEST_LONG", "not a number");
  EXPECT_EQ(env_long("DQMC_TEST_LONG", -1), -1);
  SetVar("DQMC_TEST_LONG", "12abc");  // trailing junk => fallback
  EXPECT_EQ(env_long("DQMC_TEST_LONG", -1), -1);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  SetVar("DQMC_TEST_DBL", "2.5");
  EXPECT_DOUBLE_EQ(env_double("DQMC_TEST_DBL", 0.0), 2.5);
  SetVar("DQMC_TEST_DBL", "x");
  EXPECT_DOUBLE_EQ(env_double("DQMC_TEST_DBL", 1.5), 1.5);
}

TEST_F(EnvTest, FlagVariants) {
  for (const char* v : {"1", "true", "YES", "On"}) {
    SetVar("DQMC_TEST_FLAG", v);
    EXPECT_TRUE(env_flag("DQMC_TEST_FLAG")) << v;
  }
  for (const char* v : {"0", "false", "no", "off", "banana"}) {
    SetVar("DQMC_TEST_FLAG", v);
    EXPECT_FALSE(env_flag("DQMC_TEST_FLAG")) << v;
  }
  ::unsetenv("DQMC_TEST_FLAG");
  EXPECT_TRUE(env_flag("DQMC_TEST_FLAG", true));
}

}  // namespace
}  // namespace dqmc
