// Validator behind the observability smoke test: checks that the JSON
// artifacts emitted by `dqmc_run --trace-json ... --metrics-json ...` parse
// and contain the keys downstream tooling depends on. Exits non-zero (with
// a message on stderr) on any missing key, failing the ctest entry.
//
//   obs_json_check --trace trace.json --metrics metrics.json
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using dqmc::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "obs_json_check: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Json::parse(text.str());
}

int failures = 0;

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "obs_json_check: FAILED: %s\n", what);
    ++failures;
  }
}

const Json* walk(const Json& root, const Json** out, const char* a,
                 const char* b = nullptr) {
  const Json* v = root.find(a);
  if (v != nullptr && b != nullptr) v = v->find(b);
  *out = v;
  return v;
}

void check_trace(const Json& trace) {
  const Json* events = trace.find("traceEvents");
  require(events != nullptr && events->is_array(),
          "trace has a traceEvents array");
  if (events == nullptr || !events->is_array()) return;

  // Every Table-I phase must appear as a complete span.
  const char* phases[] = {"Delayed rank-1 update", "Stratification",
                          "Clustering", "Wrapping", "Physical meas."};
  for (const char* phase : phases) {
    bool found = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const Json& e = (*events)[i];
      const Json* name = e.find("name");
      const Json* ph = e.find("ph");
      if (name != nullptr && name->is_string() && name->str() == phase &&
          ph != nullptr && ph->is_string() && ph->str() == "X") {
        found = true;
        break;
      }
    }
    char msg[128];
    std::snprintf(msg, sizeof msg, "trace contains an 'X' span for '%s'",
                  phase);
    require(found, msg);
  }
}

void check_manifest(const Json& m) {
  const Json* v = nullptr;
  require(walk(m, &v, "manifest", "seed") && v->is_number(),
          "manifest.seed is present");
  require(walk(m, &v, "manifest", "program") && v->is_string(),
          "manifest.program is present");
  require(walk(m, &v, "phases") && v->is_object(), "phases is present");
  if (m.find("phases") != nullptr) {
    require(m.at("phases").has("Stratification"),
            "phases contains Stratification");
    require(m.at("phases").has("total_seconds"),
            "phases contains total_seconds");
  }
  require(walk(m, &v, "metrics", "accept_rate") && v->is_number(),
          "metrics.accept_rate is present");
  require(walk(m, &v, "health", "wrap_drift") && v->is_object(),
          "health.wrap_drift is present");
  require(walk(m, &v, "config") && v->is_object(), "config is present");
  require(walk(m, &v, "config", "backend") && v->is_string(),
          "config.backend is present");
  require(walk(m, &v, "backend", "name") && v->is_string(),
          "backend.name is present");
  require(walk(m, &v, "backend", "compute_seconds") && v->is_number(),
          "backend.compute_seconds is present");
  require(walk(m, &v, "backend", "device") && v->is_object(),
          "backend.device section is present");
  if (m.find("backend") != nullptr && m.at("backend").has("device")) {
    const Json& dev = m.at("backend").at("device");
    require(dev.has("exposed_wait_seconds"),
            "backend.device.exposed_wait_seconds is present");
    require(dev.has("pipeline_seconds"),
            "backend.device.pipeline_seconds is present");
  }
  const Json* reg = nullptr;
  require(walk(m, &reg, "metrics", "registry") && reg->is_object(),
          "metrics.registry is present");
  if (reg != nullptr && reg->is_object()) {
    const Json* gemm = nullptr;
    require(walk(*reg, &gemm, "histograms", "gemm.gflops"),
            "metrics.registry records gemm.gflops");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--trace") trace_path = argv[i + 1];
    else if (flag == "--metrics") metrics_path = argv[i + 1];
  }
  if (trace_path.empty() || metrics_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_json_check --trace FILE --metrics FILE\n");
    return 2;
  }

  try {
    check_trace(load(trace_path));
    check_manifest(load(metrics_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_json_check: exception: %s\n", e.what());
    return 1;
  }

  if (failures > 0) {
    std::fprintf(stderr, "obs_json_check: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("obs_json_check: all checks passed\n");
  return 0;
}
