#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/error.h"

namespace dqmc::par {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SingleThreadPreservesFifoOrder) {
  // The gpusim stream depends on this: one worker => strict submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i)
    futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

}  // namespace
}  // namespace dqmc::par
