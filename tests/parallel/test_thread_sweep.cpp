// Thread-count sweep: the same computation run under budgets 1, 2 and the
// parameterized maximum (both via set_num_threads and ForOptions::max_threads)
// must produce bitwise-identical GEMM, QR and stratification results — the
// determinism contract of the static partitioning in the task runtime.
#include <gtest/gtest.h>

#include <vector>

#include "dqmc/engine.h"
#include "dqmc/stratification.h"
#include "linalg/blas3.h"
#include "linalg/qr.h"
#include "linalg/util.h"
#include "parallel/parallel_for.h"
#include "parallel/topology.h"
#include "testing/test_utils.h"

namespace dqmc {
namespace {

using linalg::idx;
using linalg::Matrix;
using linalg::MatrixRng;
using linalg::Trans;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

const std::vector<int> kSweep = {1, 2, 4};

class ThreadSweep : public ::testing::Test {};

TEST_F(ThreadSweep, GemmBitwiseIdenticalAcrossThreadCounts) {
  MatrixRng rng(101);
  Matrix a = rng.uniform_matrix(210, 190);
  Matrix b = rng.uniform_matrix(190, 170);
  Matrix reference;
  for (int threads : kSweep) {
    ThreadCountGuard guard(threads);
    Matrix c = Matrix::zero(210, 170);
    linalg::gemm(Trans::No, Trans::Yes, 1.5, a,
                 linalg::transpose(b), -0.5, c);
    if (threads == kSweep.front()) {
      reference = std::move(c);
    } else {
      EXPECT_MATRIX_NEAR(c, reference, 0.0);
    }
  }
}

TEST_F(ThreadSweep, MaxThreadsOptionIsBitwiseEquivalent) {
  // Capping through ForOptions::max_threads must agree with capping through
  // the global budget: both select the same static partition.
  MatrixRng rng(103);
  Matrix a = rng.uniform_matrix(300, 64);
  auto sum_with = [&](par::ForOptions opt) {
    return par::parallel_sum(
        0, a.rows() * a.cols(),
        [&](par::index_t i) { return a.data()[i] * a.data()[i]; }, opt);
  };
  double serial;
  {
    ThreadCountGuard inner(1);
    serial = sum_with({.grain = 16});
  }
  ThreadCountGuard guard(4);
  const double capped = sum_with({.grain = 16, .max_threads = 1});
  const double budget2 = sum_with({.grain = 16, .max_threads = 2});
  EXPECT_EQ(capped, serial);
  // Two workers sum two ordered partials; same arithmetic every run.
  double budget2_again = sum_with({.grain = 16, .max_threads = 2});
  EXPECT_EQ(budget2, budget2_again);
}

TEST_F(ThreadSweep, QrBitwiseIdenticalAcrossThreadCounts) {
  MatrixRng rng(107);
  Matrix a = rng.uniform_matrix(160, 160);
  Matrix ref_factors, ref_q;
  linalg::Vector ref_tau;
  for (int threads : kSweep) {
    ThreadCountGuard guard(threads);
    linalg::QRFactorization f = linalg::qr_factor(a);
    Matrix q = linalg::qr_q(f);
    if (threads == kSweep.front()) {
      ref_factors = f.factors;
      ref_tau = f.tau;
      ref_q = std::move(q);
    } else {
      EXPECT_MATRIX_NEAR(f.factors, ref_factors, 0.0);
      for (idx i = 0; i < ref_tau.size(); ++i) {
        ASSERT_EQ(f.tau[i], ref_tau[i]) << "threads=" << threads << " i=" << i;
      }
      EXPECT_MATRIX_NEAR(q, ref_q, 0.0);
    }
  }
}

TEST_F(ThreadSweep, TriangularKernelsBitwiseIdenticalAcrossThreadCounts) {
  MatrixRng rng(109);
  const idx n = 150;
  Matrix t = rng.uniform_matrix(n, n);
  for (idx i = 0; i < n; ++i) t(i, i) = 4.0 + 0.01 * static_cast<double>(i);
  Matrix b0 = rng.uniform_matrix(90, n);

  for (auto uplo : {linalg::UpLo::Upper, linalg::UpLo::Lower}) {
    for (auto trans : {Trans::No, Trans::Yes}) {
      Matrix ref_solve, ref_mult;
      for (int threads : kSweep) {
        ThreadCountGuard guard(threads);
        Matrix bs = b0;
        linalg::trsm(linalg::Side::Right, uplo, trans, linalg::Diag::NonUnit,
                     1.0, t, bs);
        Matrix bm = b0;
        linalg::trmm(linalg::Side::Right, uplo, trans, linalg::Diag::NonUnit,
                     1.0, t, bm);
        if (threads == kSweep.front()) {
          ref_solve = std::move(bs);
          ref_mult = std::move(bm);
        } else {
          EXPECT_MATRIX_NEAR(bs, ref_solve, 0.0);
          EXPECT_MATRIX_NEAR(bm, ref_mult, 0.0);
        }
      }
    }
  }
}

TEST_F(ThreadSweep, StratificationBitwiseIdenticalAcrossThreadCounts) {
  const idx n = 64;
  MatrixRng rng(113);
  std::vector<Matrix> factors;
  for (int f = 0; f < 12; ++f) {
    Matrix m = rng.uniform_matrix(n, n);
    // Stretch the spectrum so the graded decomposition actually grades.
    for (idx j = 0; j < n; ++j) {
      const double s = j % 2 == 0 ? 3.0 : 0.3;
      for (idx i = 0; i < n; ++i) m(i, j) *= s;
    }
    factors.push_back(std::move(m));
  }

  for (auto algorithm :
       {core::StratAlgorithm::kPrePivot, core::StratAlgorithm::kQRP}) {
    Matrix reference;
    for (int threads : kSweep) {
      ThreadCountGuard guard(threads);
      core::StratificationEngine engine(n, algorithm);
      Matrix g = engine.compute(factors);
      if (threads == kSweep.front()) {
        reference = std::move(g);
      } else {
        EXPECT_MATRIX_NEAR(g, reference, 0.0);
      }
    }
  }
}

TEST_F(ThreadSweep, EngineTrajectoryAndSignIdenticalAcrossThreadCounts) {
  hubbard::Lattice lat(4, 4);
  hubbard::ModelParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.slices = 8;
  core::EngineConfig cfg;
  cfg.cluster_size = 4;

  Matrix ref_up, ref_dn;
  int ref_sign = 0;
  for (int threads : kSweep) {
    ThreadCountGuard guard(threads);
    core::DqmcEngine engine(lat, p, cfg, 719);
    engine.initialize();
    engine.sweep();
    engine.sweep();
    Matrix up(engine.greens(hubbard::Spin::Up));
    Matrix dn(engine.greens(hubbard::Spin::Down));
    if (threads == kSweep.front()) {
      ref_up = std::move(up);
      ref_dn = std::move(dn);
      ref_sign = engine.config_sign();
    } else {
      EXPECT_MATRIX_NEAR(up, ref_up, 0.0);
      EXPECT_MATRIX_NEAR(dn, ref_dn, 0.0);
      EXPECT_EQ(engine.config_sign(), ref_sign) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dqmc
