// Torture tests for the work-stealing task runtime: spawn-from-task,
// recursive groups, exception propagation, and nested parallel_for — the
// properties the engine's spin-level task parallelism depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::par {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) { set_num_threads(threads); }
  ~ThreadCountGuard() { set_num_threads(0); }
};

class TaskRuntimeTorture : public ::testing::TestWithParam<int> {};

TEST_P(TaskRuntimeTorture, RunsEveryTaskExactlyOnce) {
  ThreadCountGuard guard(GetParam());
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  TaskGroup group;
  for (int i = 0; i < kTasks; ++i) {
    group.run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(TaskRuntimeTorture, SpawnFromTask) {
  ThreadCountGuard guard(GetParam());
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 16; ++i) {
    group.run([&group, &count] {
      count.fetch_add(1);
      // Children join the same group; wait() must not return before them.
      for (int j = 0; j < 4; ++j) {
        group.run([&count] { count.fetch_add(1); });
      }
    });
  }
  group.wait();
  EXPECT_EQ(count.load(), 16 * 5);
}

TEST_P(TaskRuntimeTorture, RecursiveGroupsDoNotDeadlock) {
  ThreadCountGuard guard(GetParam());
  // Each task opens its own nested group and waits on it — a waiting thread
  // must help execute pending tasks or this recursion starves the pool.
  std::function<int(int)> tree = [&](int depth) -> int {
    if (depth == 0) return 1;
    int left = 0, right = 0;
    TaskGroup g;
    g.run([&] { left = tree(depth - 1); });
    g.run([&] { right = tree(depth - 1); });
    g.wait();
    return left + right;
  };
  EXPECT_EQ(tree(6), 64);
}

TEST_P(TaskRuntimeTorture, ExceptionPropagatesToWait) {
  ThreadCountGuard guard(GetParam());
  TaskGroup group;
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 5) throw std::runtime_error("task failure");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The captured exception is sticky: later waits rethrow it too.
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST_P(TaskRuntimeTorture, GroupIsReusableAfterWait) {
  ThreadCountGuard guard(GetParam());
  TaskGroup group;
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i) {
      group.run([&count] { count.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(count.load(), 32 * (round + 1));
  }
}

TEST_P(TaskRuntimeTorture, NestedParallelForComposes) {
  ThreadCountGuard guard(GetParam());
  constexpr index_t kOuter = 8, kInner = 64;
  std::vector<double> out(static_cast<std::size_t>(kOuter * kInner), 0.0);
  parallel_for(
      0, kOuter,
      [&](index_t i) {
        // Nested loop inside a task: must run (not deadlock, not skip
        // iterations) whatever the thread budget.
        parallel_for(
            0, kInner,
            [&](index_t j) {
              out[static_cast<std::size_t>(i * kInner + j)] =
                  static_cast<double>(i * kInner + j);
            },
            {.grain = 4});
      },
      {.grain = 1});
  for (index_t i = 0; i < kOuter * kInner; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<double>(i));
  }
}

TEST_P(TaskRuntimeTorture, ParallelSumMatchesSerial) {
  ThreadCountGuard guard(GetParam());
  const double threaded = parallel_sum(
      0, 10000, [](index_t i) { return static_cast<double>(i); }, {.grain = 8});
  EXPECT_EQ(threaded, 10000.0 * 9999.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Budgets, TaskRuntimeTorture,
                         ::testing::Values(1, 2, 4, 7));

TEST(TaskRuntimeStats, CountersAreMonotonic) {
  const RuntimeStats before = TaskRuntime::global().stats();
  ThreadCountGuard guard(4);
  TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  const RuntimeStats after = TaskRuntime::global().stats();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(after.tasks_spawned, before.tasks_spawned + 64);
  EXPECT_GE(after.tasks_executed, before.tasks_executed + 64);
  EXPECT_GE(after.groups, before.groups + 1);
  EXPECT_GE(after.tasks_stolen, before.tasks_stolen);
  EXPECT_GE(after.tasks_helped, before.tasks_helped);
}

TEST(TaskRuntimeStats, WorkersStayWithinBudget) {
  {
    ThreadCountGuard guard(3);
    TaskGroup group;
    for (int i = 0; i < 16; ++i) group.run([] {});
    group.wait();
  }
  // Workers are persistent; the pool must have grown to budget-1 at least
  // once but never beyond the largest budget seen so far in this process.
  EXPECT_GE(TaskRuntime::global().workers(), 2);
}

}  // namespace
}  // namespace dqmc::par
