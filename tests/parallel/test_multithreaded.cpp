// Force multiple worker threads (regardless of the host's core count) and
// verify that every threaded kernel produces results identical to the
// serial path — the determinism contract of the static partitioning.
#include <gtest/gtest.h>

#include "dqmc/engine.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/norms.h"
#include "linalg/util.h"
#include "parallel/topology.h"
#include "testing/test_utils.h"

namespace dqmc {
namespace {

using linalg::idx;
using linalg::Matrix;
using linalg::MatrixRng;
using linalg::Trans;

/// Runs the body once with 1 thread and once with `threads`, restoring the
/// global setting afterwards.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) { par::set_num_threads(threads); }
  ~ThreadCountGuard() { par::set_num_threads(0); }
};

class MultithreadedKernels : public ::testing::TestWithParam<int> {};

TEST_P(MultithreadedKernels, GemmMatchesSerial) {
  MatrixRng rng(11);
  Matrix a = rng.uniform_matrix(150, 120);
  Matrix b = rng.uniform_matrix(120, 90);
  Matrix serial = Matrix::zero(150, 90);
  {
    ThreadCountGuard guard(1);
    linalg::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, serial);
  }
  Matrix threaded = Matrix::zero(150, 90);
  {
    ThreadCountGuard guard(GetParam());
    linalg::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, threaded);
  }
  // Same partition arithmetic per row-tile => bitwise identical.
  EXPECT_MATRIX_NEAR(threaded, serial, 0.0);
}

TEST_P(MultithreadedKernels, ColumnNormsMatchSerial) {
  MatrixRng rng(13);
  Matrix a = rng.uniform_matrix(200, 160);
  linalg::Vector serial(160), threaded(160);
  {
    ThreadCountGuard guard(1);
    linalg::column_norms(a, serial.data());
  }
  {
    ThreadCountGuard guard(GetParam());
    linalg::column_norms(a, threaded.data());
  }
  for (idx j = 0; j < 160; ++j) ASSERT_EQ(serial[j], threaded[j]) << j;
}

TEST_P(MultithreadedKernels, ScalingKernelsMatchSerial) {
  MatrixRng rng(17);
  Matrix base = rng.uniform_matrix(180, 140);
  linalg::Vector r(180), c(140);
  for (idx i = 0; i < 180; ++i) r[i] = rng.uniform(0.5, 2.0);
  for (idx j = 0; j < 140; ++j) c[j] = rng.uniform(0.5, 2.0);

  Matrix serial = base, threaded = base;
  {
    ThreadCountGuard guard(1);
    linalg::scale_rows(r.data(), serial);
    linalg::scale_cols(c.data(), serial);
  }
  {
    ThreadCountGuard guard(GetParam());
    linalg::scale_rows(r.data(), threaded);
    linalg::scale_cols(c.data(), threaded);
  }
  EXPECT_MATRIX_NEAR(threaded, serial, 0.0);
}

TEST_P(MultithreadedKernels, TrsmMatchesSerial) {
  MatrixRng rng(19);
  const idx n = 170;
  Matrix t = rng.uniform_matrix(n, n);
  for (idx j = 0; j < n; ++j)
    for (idx i = j + 1; i < n; ++i) t(i, j) = 0.0;
  for (idx i = 0; i < n; ++i) t(i, i) = 3.0 + 0.01 * static_cast<double>(i);
  Matrix b = rng.uniform_matrix(n, 40);

  Matrix serial = b, threaded = b;
  {
    ThreadCountGuard guard(1);
    linalg::trsm(linalg::Side::Left, linalg::UpLo::Upper, Trans::No,
                 linalg::Diag::NonUnit, 1.0, t, serial);
  }
  {
    ThreadCountGuard guard(GetParam());
    linalg::trsm(linalg::Side::Left, linalg::UpLo::Upper, Trans::No,
                 linalg::Diag::NonUnit, 1.0, t, threaded);
  }
  EXPECT_MATRIX_NEAR(threaded, serial, 0.0);
}

TEST_P(MultithreadedKernels, FullSweepTrajectoryMatchesSerial) {
  hubbard::Lattice lat(4, 4);
  hubbard::ModelParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.slices = 8;
  core::EngineConfig cfg;
  cfg.cluster_size = 4;

  auto run = [&](int threads) {
    ThreadCountGuard guard(threads);
    core::DqmcEngine engine(lat, p, cfg, 303);
    engine.initialize();
    engine.sweep();
    return Matrix(engine.greens(hubbard::Spin::Up));
  };
  Matrix serial = run(1);
  Matrix threaded = run(GetParam());
  EXPECT_MATRIX_NEAR(threaded, serial, 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, MultithreadedKernels,
                         ::testing::Values(2, 4, 7));

}  // namespace
}  // namespace dqmc
