#include "parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/topology.h"

namespace dqmc::par {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr index_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](index_t i) { hits[i].fetch_add(1); }, {.grain = 16});
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](index_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBegin) {
  std::vector<int> hits(20, 0);
  parallel_for(10, 20, [&](index_t i) { hits[i] = 1; }, {.grain = 1});
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i], 0);
  for (index_t i = 10; i < 20; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelFor, SmallLoopRunsSerially) {
  // With grain larger than the range, the loop must not spawn: every
  // iteration sees the same thread-local counter.
  thread_local int counter = 0;
  counter = 0;
  parallel_for(0, 8, [&](index_t) { ++counter; }, {.grain = 1024});
  EXPECT_EQ(counter, 8);
}

TEST(ParallelForChunks, ChunksArePairwiseDisjointAndCover) {
  constexpr index_t n = 4097;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      0, n,
      [&](index_t lo, index_t hi) {
        EXPECT_LT(lo, hi);
        for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      {.grain = 64});
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelSum, MatchesSerialSum) {
  constexpr index_t n = 5000;
  const double got =
      parallel_sum(0, n, [](index_t i) { return static_cast<double>(i); },
                   {.grain = 32});
  EXPECT_DOUBLE_EQ(got, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelSum, EmptyRangeIsZero) {
  EXPECT_DOUBLE_EQ(parallel_sum(3, 3, [](index_t) { return 1.0; }), 0.0);
}

TEST(Topology, OverrideAndReset) {
  const int def = num_threads();
  EXPECT_GE(def, 1);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), def);
}

TEST(Topology, MaxThreadsOptionLimitsWorkers) {
  // Indirect check: with max_threads=1 the loop must be serial even for a
  // large range (observable via a non-atomic counter that would race).
  long counter = 0;
  parallel_for(0, 100000, [&](index_t) { ++counter; },
               {.grain = 1, .max_threads = 1});
  EXPECT_EQ(counter, 100000);
}

}  // namespace
}  // namespace dqmc::par
