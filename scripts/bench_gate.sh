#!/usr/bin/env bash
# Bench-regression gate driver: re-runs the committed bench workloads and
# compares them against the bench/BENCH_*.json baselines, failing (exit 1)
# when any row drifts past the noise tolerance. See docs/OBSERVABILITY.md.
#
#   scripts/bench_gate.sh                  # full batched suite, 10% tolerance
#   scripts/bench_gate.sh --quick          # ctest-sized subset
#   BUILD_DIR=build-tsan scripts/bench_gate.sh
#
# Extra arguments are forwarded to bench_regress (e.g. --tolerance 0.05,
# --report gate_report.json).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
tool="$build/bench/bench_regress"

if [[ ! -x "$tool" ]]; then
  echo "bench_gate: $tool not built (cmake --build $build --target bench_regress)" >&2
  exit 2
fi

exec "$tool" --baseline "$repo/bench/BENCH_batched.json" "$@"
