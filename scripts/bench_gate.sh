#!/usr/bin/env bash
# Bench-regression gate driver: re-runs the committed bench workloads and
# compares them against the bench/BENCH_*.json baselines, failing (exit 1)
# when any row drifts past the noise tolerance. See docs/OBSERVABILITY.md.
#
#   scripts/bench_gate.sh                  # all suites, 10% tolerance
#   scripts/bench_gate.sh --quick          # ctest-sized subsets
#   BUILD_DIR=build-tsan scripts/bench_gate.sh
#
# Extra arguments are forwarded to every bench_regress suite invocation
# (e.g. --tolerance 0.05). Runs the batched, checkerboard, stability,
# fleet, and fft suites in sequence; the first failing suite fails the
# gate.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
tool="$build/bench/bench_regress"

if [[ ! -x "$tool" ]]; then
  echo "bench_gate: $tool not built (cmake --build $build --target bench_regress)" >&2
  exit 2
fi

"$tool" --suite batched --baseline "$repo/bench/BENCH_batched.json" "$@"
"$tool" --suite checkerboard \
        --baseline "$repo/bench/BENCH_checkerboard.json" "$@"
"$tool" --suite stability \
        --baseline "$repo/bench/BENCH_stability.json" "$@"
"$tool" --suite fleet --baseline "$repo/bench/BENCH_fleet.json" "$@"
"$tool" --suite fft --baseline "$repo/bench/BENCH_fft.json" "$@"
